package gauss

import (
	"fmt"
	"math"

	"ken/internal/mat"
)

// Workspace holds the scratch storage for the in-place Gaussian updates
// Predict and ObserveExact, plus the incremental-conditioning evaluator
// cache (see cond.go). One workspace serves one Gaussian of dimension
// n; it is not safe for concurrent use and must never be shared between
// model replicas (a shared workspace would let one replica's update read
// the other's intermediates).
type Workspace struct {
	n    int
	all  []int      // 0..n-1, the full row index set
	mu   []float64  // n: predicted mean / conditioning staging
	w    []float64  // n: solve right-hand side
	col  []float64  // n: per-column solve / rank-1 column scratch
	bb   *mat.Dense // m×m observed block Σ_bb
	s    *mat.Dense // n×m cross block Σ_{·,b}
	sol  *mat.Dense // m×n solved block Σ_bb⁻¹ Σ_{b,·}
	cov  *mat.Dense // n×n: A·Σ
	cov2 *mat.Dense // n×n: A·Σ·Aᵀ / conditioning staging
	corr *mat.Dense // n×n: conditioning correction
	ch   *mat.Cholesky

	// gen counts state mutations of the Gaussian this workspace serves:
	// Predict and ObserveExact bump it on success. The evaluator cache
	// below is keyed on (Gaussian pointer, gen) — any mutation invalidates
	// every cached factorization, so a stale evaluator can never answer.
	gen uint64

	// Incremental-conditioning evaluator cache: the observed index set in
	// insertion order, the observed values and mean residuals, and the
	// Cholesky factor of the observed block grown one index at a time via
	// Extend. See CondReset/CondAdd/CondMeanInto.
	evalG     *Gaussian
	evalGen   uint64
	evalIdx   []int
	evalVals  []float64
	evalDelta []float64
	evalW     []float64
	evalCol   []float64
	evalCh    *mat.Cholesky
}

// NewWorkspace allocates scratch for Gaussians of dimension n.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		n:         n,
		all:       identityIndex(n),
		mu:        make([]float64, n),
		w:         make([]float64, n),
		col:       make([]float64, n),
		bb:        mat.NewDense(n, n),
		s:         mat.NewDense(n, n),
		sol:       mat.NewDense(n, n),
		cov:       mat.NewDense(n, n),
		cov2:      mat.NewDense(n, n),
		corr:      mat.NewDense(n, n),
		ch:        mat.NewCholeskyWorkspace(n),
		evalIdx:   make([]int, 0, n),
		evalVals:  make([]float64, 0, n),
		evalDelta: make([]float64, 0, n),
		evalW:     make([]float64, n),
		evalCol:   make([]float64, n),
		evalCh:    mat.NewCholeskyWorkspace(n),
	}
}

// Generation returns the workspace's mutation counter. It increments on
// every successful Predict or ObserveExact against this workspace, so any
// cached artifact derived from the served Gaussian's state (conditioning
// factorizations, query plans) can key on it for invalidation.
func (ws *Workspace) Generation() uint64 { return ws.gen }

// MeanInto copies the mean vector into dst without allocating.
//
//ken:hotpath copies into the caller's buffer
func (g *Gaussian) MeanInto(dst []float64) error {
	if len(dst) != len(g.mean) {
		return fmt.Errorf("gauss: MeanInto dst len %d, want %d", len(dst), len(g.mean))
	}
	copy(dst, g.mean)
	return nil
}

// Predict pushes the belief through the linear transition in place:
// μ ← A·μ, Σ ← A·Σ·Aᵀ + Q. aT must be the transpose of a (precomputed so
// the hot path does not allocate it). Arithmetic is bit-identical with the
// allocating sequence MulVec/Mul/Mul/AddMat/Symmetrize followed by New's
// symmetrisation: Symmetrize is bitwise idempotent, so symmetrising once
// here equals the old path's two passes.
//
//ken:hotpath the predict step runs against the workspace
func (g *Gaussian) Predict(a, aT, q *mat.Dense, ws *Workspace) error {
	n := len(g.mean)
	if ws.n != n {
		return fmt.Errorf("gauss: workspace dim %d, distribution dim %d", ws.n, n)
	}
	if err := a.MulVecInto(ws.mu, g.mean); err != nil {
		return err
	}
	if err := ws.cov.MulInto(a, g.cov); err != nil {
		return err
	}
	if err := ws.cov2.MulInto(ws.cov, aT); err != nil {
		return err
	}
	if err := g.cov.AddInto(ws.cov2, q); err != nil {
		return err
	}
	copy(g.mean, ws.mu)
	g.cov.Symmetrize()
	ws.gen++
	return nil
}

// ObserveExact collapses the belief on exact observations in place:
// variable idx[k] is observed at vals[k]. idx must be strictly increasing
// and in range — the sorted-key form of Condition's map argument; vals must
// be finite (a NaN or Inf reaching the mean update would corrupt the
// distribution irreversibly, so non-finite values are rejected with
// ErrNotFinite before any state is touched). The observed variables become
// exact (zero variance); the kept block takes the conditional mean and
// covariance.
//
// Conditioning runs incrementally, one observation at a time: observing
// x_i rescales the i-th covariance column into a rank-1 mean shift and
// covariance correction (O(n²), no factorization), and by the chain rule a
// sequence of single-variable conditionings equals the joint batch update
// exactly in real arithmetic. In floating point the incremental and batch
// paths agree only to tolerance (~1e-12 relative, far inside the audit's
// 1e-9 slack), so replica lock-step holds because both replicas run this
// same deterministic path on identical state — a pure function of
// (state, idx, vals), never of cache warmth. A non-positive pivot falls
// back to the batch path, whose jitter ladder absorbs PSD blocks; a
// non-PD observed block leaves the distribution unmodified, as before.
//
//ken:hotpath conditioning runs against the workspace
func (g *Gaussian) ObserveExact(idx []int, vals []float64, ws *Workspace) error {
	n := len(g.mean)
	if ws.n != n {
		return fmt.Errorf("gauss: workspace dim %d, distribution dim %d", ws.n, n)
	}
	m := len(idx)
	if len(vals) != m {
		return fmt.Errorf("gauss: ObserveExact has %d indices, %d values", m, len(vals))
	}
	prev := -1
	for _, i := range idx {
		if i < 0 || i >= n {
			return fmt.Errorf("gauss: condition index %d out of range %d", i, n)
		}
		if i <= prev {
			return fmt.Errorf("gauss: ObserveExact indices not strictly increasing at %d", i)
		}
		prev = i
	}
	for k, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: value %v for attribute %d", ErrNotFinite, v, idx[k])
		}
	}
	if m == 0 {
		return nil
	}
	if m == n {
		// Every variable observed: the posterior is a point mass. No
		// factorisation — Condition's (nil, nil, nil) case never built one,
		// so heartbeat-style full observations work on singular covariances.
		copy(g.mean, vals)
		g.cov.ReuseAs(n, n)
		ws.gen++
		return nil
	}
	if m == 1 {
		// Single observation — the paper's common case (one violating
		// attribute per report). The rank-1 pre-check is just the pivot
		// sign, so on success the update runs directly on the
		// distribution: one O(n²) pass instead of the batch path's
		// factorize/solve/multiply/subtract/symmetrize sequence.
		if rank1Condition(g.cov, g.mean, idx[0], vals[0], ws.col) {
			ws.gen++
			return nil
		}
		return g.observeExactBatch(idx, vals, ws)
	}
	// Multiple observations: stage the sequential rank-1 sweep on workspace
	// copies, committing only if every pivot is positive — a failed pivot
	// midway must leave the distribution untouched for the batch fallback.
	ws.cov2.CopyFrom(g.cov)
	mu := ws.mu[:n]
	copy(mu, g.mean)
	for k, i := range idx {
		if !rank1Condition(ws.cov2, mu, i, vals[k], ws.col) {
			return g.observeExactBatch(idx, vals, ws)
		}
	}
	g.cov.CopyFrom(ws.cov2)
	copy(g.mean, mu)
	ws.gen++
	return nil
}

// rank1Condition conditions (cov, mu) on variable i taking value v, in
// place: with d = Σ_ii and c = Σ_{·,i},
//
//	μ ← μ + c·(v − μ_i)/d,   Σ ← Σ − c·cᵀ/d,
//
// then the observed row/column is zeroed and μ_i set exactly. The rank-1
// term is computed as (c_r·c_s)·d⁻¹ — identical multiply order for (r,s)
// and (s,r) — so exact symmetry of cov is preserved without a Symmetrize
// pass. Returns false, with nothing mutated, when the pivot d is not
// strictly positive and finite (deferring to the batch path's jitter
// ladder). scratch must have length ≥ cov's order.
//
//ken:hotpath the single-observation conditioning kernel
func rank1Condition(cov *mat.Dense, mu []float64, i int, v float64, scratch []float64) bool {
	n := len(mu)
	d := cov.At(i, i)
	if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return false
	}
	// Snapshot column i before any write; cov is symmetric, so the column
	// equals row i and can be read contiguously.
	c := scratch[:n]
	copy(c, cov.RowView(i))
	invd := 1 / d
	w0 := (v - mu[i]) * invd
	for r := 0; r < n; r++ {
		mu[r] += c[r] * w0
	}
	mu[i] = v
	for r := 0; r < n; r++ {
		cr := c[r]
		//lint:ignore floateq exact-zero column entries contribute only signed zeros; skipping them is the same bitwise no-op ObserveExact's batch path relies on
		if cr == 0 {
			// Every term of this row (and the mirrored column entries) is
			// ±0; subtracting a signed zero is a bitwise no-op.
			continue
		}
		row := cov.RowView(r)
		for s, cs := range c {
			row[s] -= (cr * cs) * invd
		}
	}
	ri := cov.RowView(i)
	for s := 0; s < n; s++ {
		ri[s] = 0
	}
	for r := 0; r < n; r++ {
		cov.RowView(r)[i] = 0
	}
	return true
}

// observeExactBatch is the from-scratch joint conditioning path: factorize
// the observed block Σ_bb (jitter ladder included), solve for the mean
// adjustment and correction block, subtract once. It remains both the
// fallback when a rank-1 pivot is non-positive — its jitter ladder absorbs
// PSD observed blocks — and the reference implementation the incremental
// path is cross-checked against in tests and benchmarks. idx and vals are
// pre-validated by ObserveExact.
func (g *Gaussian) observeExactBatch(idx []int, vals []float64, ws *Workspace) error {
	n := len(g.mean)
	m := len(idx)

	// Factorise Σ_bb before mutating anything: a non-PD observed block must
	// leave the distribution untouched.
	if err := ws.bb.SubmatrixInto(g.cov, idx, idx); err != nil {
		return err
	}
	if err := ws.ch.Factorize(ws.bb); err != nil {
		return fmt.Errorf("gauss: observed block not PD: %w", err)
	}

	// w = Σ_bb⁻¹ (x_b − μ_b)
	w := ws.w[:m]
	for k, i := range idx {
		w[k] = vals[k] - g.mean[i]
	}
	if err := ws.ch.SolveVecInPlace(w); err != nil {
		return err
	}

	// s = Σ_{·,b} over all n rows. Kept rows are Σ_ab; observed rows feed
	// adjustments that are overwritten by the exact values below, so
	// computing the full column block at once is safe.
	if err := ws.s.SubmatrixInto(g.cov, ws.all, idx); err != nil {
		return err
	}
	adj := ws.mu
	if err := ws.s.MulVecInto(adj, w); err != nil {
		return err
	}
	for i := range g.mean {
		g.mean[i] += adj[i]
	}
	for k, i := range idx {
		g.mean[i] = vals[k]
	}

	// sol = Σ_bb⁻¹ Σ_{b,·} column by column. Each column's solve is
	// independent, so the kept columns match Cholesky.Solve against Σ_baᵀ.
	ws.sol.ReuseAs(m, n)
	col := ws.col[:m]
	for j := 0; j < n; j++ {
		for k := 0; k < m; k++ {
			col[k] = ws.s.At(j, k)
		}
		if err := ws.ch.SolveVecInPlace(col); err != nil {
			return err
		}
		for k := 0; k < m; k++ {
			ws.sol.Set(k, j, col[k])
		}
	}
	// corr = Σ_{·,b} Σ_bb⁻¹ Σ_{b,·}; accumulate fully, subtract once —
	// incremental subtraction would reorder the floating-point sums.
	if err := ws.corr.MulInto(ws.s, ws.sol); err != nil {
		return err
	}
	if err := g.cov.SubInPlace(ws.corr); err != nil {
		return err
	}
	// Observed variables are exact: zero their rows and columns.
	for _, i := range idx {
		for j := 0; j < n; j++ {
			g.cov.Set(i, j, 0)
			g.cov.Set(j, i, 0)
		}
	}
	g.cov.Symmetrize()
	ws.gen++
	return nil
}
