package gauss

import (
	"errors"
	"fmt"
	"math"
)

// Incremental conditioning evaluator. The greedy report search (model
// layer) repeatedly asks "what would the conditional mean be if, on top of
// the attributes already in the report, I also reported x_i?" — an
// observed set that only ever grows by one index per round. Answering each
// round from scratch refactorizes the observed block at O(m³) plus
// allocations; the evaluator instead caches the Cholesky factor of the
// observed block in insertion order inside the Workspace and grows it by
// one bordered row per CondAdd (mat.Cholesky.Extend, O(m²)), so a whole
// search costs what one from-scratch evaluation used to.
//
// The cache is keyed on (Gaussian pointer, Workspace generation): any
// Predict/ObserveExact bumps the generation, so a stale evaluator answers
// errCondStale rather than serving a factor of dead state. The evaluator
// never mutates the Gaussian — hypothesis evaluation must stay side-effect
// free, because only the source runs the search and replica lock-step
// requires the sink's state transitions to be independent of it.

// errCondStale is returned by CondAdd/CondMeanInto when the underlying
// Gaussian mutated (or changed identity) after CondReset. Package-level so
// hot-path error returns do not allocate.
var errCondStale = errors.New("gauss: conditioning evaluator stale; CondReset required")

// CondReset seeds the workspace's incremental-conditioning evaluator for g
// with an empty observed set, binding the cache to g's current generation.
//
//ken:hotpath resets the evaluator within preallocated capacity
func (g *Gaussian) CondReset(ws *Workspace) error {
	if ws.n != len(g.mean) {
		return fmt.Errorf("gauss: workspace dim %d, distribution dim %d", ws.n, len(g.mean))
	}
	ws.evalG = g
	ws.evalGen = ws.gen
	ws.evalIdx = ws.evalIdx[:0]
	ws.evalVals = ws.evalVals[:0]
	ws.evalDelta = ws.evalDelta[:0]
	ws.evalCh.Reset()
	return nil
}

// CondAdd grows the hypothetical observed set by attribute i at value v,
// extending the cached factor by one bordered row. On error (out-of-range
// or duplicate index, non-finite value, stale cache, or a non-positive new
// pivot — the evaluator has no jitter ladder) the evaluator is unchanged
// and the caller should fall back to the from-scratch Condition path.
//
//ken:hotpath grows the cached observed-block factor in place
func (g *Gaussian) CondAdd(i int, v float64, ws *Workspace) error {
	if ws.evalG != g || ws.evalGen != ws.gen {
		return errCondStale
	}
	if i < 0 || i >= ws.n {
		return fmt.Errorf("gauss: condition index %d out of range %d", i, ws.n)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%w: value %v for attribute %d", ErrNotFinite, v, i)
	}
	for _, j := range ws.evalIdx {
		if j == i {
			return fmt.Errorf("gauss: attribute %d already in the observed set", i)
		}
	}
	m := len(ws.evalIdx)
	col := ws.evalCol[:m]
	for k, j := range ws.evalIdx {
		col[k] = g.cov.At(j, i)
	}
	if err := ws.evalCh.Extend(col, g.cov.At(i, i)); err != nil {
		return err
	}
	// The evaluator slices are preallocated to cap n by NewWorkspace and
	// truncated by CondReset; m+1 ≤ n because i is range-checked and
	// duplicates are rejected above, so these reslices cannot grow.
	ws.evalIdx = ws.evalIdx[:m+1]
	ws.evalIdx[m] = i
	ws.evalVals = ws.evalVals[:m+1]
	ws.evalVals[m] = v
	ws.evalDelta = ws.evalDelta[:m+1]
	ws.evalDelta[m] = v - g.mean[i]
	return nil
}

// CondMeanInto writes the full-length conditional mean given the
// evaluator's current observed set into dst: observed positions take their
// hypothesised values, the rest their conditional expectations — the same
// answer as ConditionalMean on the equivalent map, to numerical tolerance,
// with no allocation and no refactorization. The Gaussian is not mutated.
//
//ken:hotpath answers from the cached factor into the caller's buffer
func (g *Gaussian) CondMeanInto(dst []float64, ws *Workspace) error {
	if ws.evalG != g || ws.evalGen != ws.gen {
		return errCondStale
	}
	n := ws.n
	if len(dst) != n {
		return fmt.Errorf("gauss: CondMeanInto dst len %d, want %d", len(dst), n)
	}
	m := len(ws.evalIdx)
	if m == 0 {
		copy(dst, g.mean)
		return nil
	}
	// w = Σ_bb⁻¹ (x_b − μ_b) against the insertion-ordered cached factor.
	w := ws.evalW[:m]
	copy(w, ws.evalDelta)
	if err := ws.evalCh.SolveVecInPlace(w); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		s := g.mean[r]
		for k, j := range ws.evalIdx {
			s += g.cov.At(r, j) * w[k]
		}
		dst[r] = s
	}
	for k, j := range ws.evalIdx {
		dst[j] = ws.evalVals[k]
	}
	return nil
}

// CondLen returns the size of the evaluator's current observed set.
func (ws *Workspace) CondLen() int { return len(ws.evalIdx) }
