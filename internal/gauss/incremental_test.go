package gauss

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ken/internal/mat"
)

// randomSPDGaussian builds an n-dimensional Gaussian with a well-conditioned
// random SPD covariance.
func randomSPDGaussian(r *rand.Rand, n int) *Gaussian {
	b := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, r.NormFloat64())
		}
	}
	cov, _ := b.Mul(b.T())
	for i := 0; i < n; i++ {
		cov.Add(i, i, float64(n))
	}
	mu := make([]float64, n)
	for i := range mu {
		mu[i] = r.NormFloat64() * 5
	}
	return MustNew(mu, cov)
}

// sortedSubset picks a random strictly-increasing index subset of size m.
func sortedSubset(r *rand.Rand, n, m int) []int {
	perm := r.Perm(n)[:m]
	idx := append([]int(nil), perm...)
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// The tentpole cross-check: the incremental rank-1 conditioning path must
// agree with the from-scratch batch path (Condition + re-embed, which
// observeExactBatch replicates) to ≤1e-9 — the audit's epsSlack — on both
// mean and covariance.
func TestQuickObserveExactIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		m := 1 + r.Intn(n-1) // 1 ≤ m < n: the dispatch paths under test
		g := randomSPDGaussian(r, n)
		idx := sortedSubset(r, n, m)
		vals := make([]float64, m)
		for k, i := range idx {
			vals[k] = g.mean[i] + r.NormFloat64()*3
		}

		inc := g.Clone()
		scr := g.Clone()
		wsInc := NewWorkspace(n)
		wsScr := NewWorkspace(n)
		if err := inc.ObserveExact(idx, vals, wsInc); err != nil {
			return false
		}
		if err := scr.observeExactBatch(idx, vals, wsScr); err != nil {
			return false
		}
		scale := 1 + scr.cov.MaxAbs()
		for i := 0; i < n; i++ {
			if math.Abs(inc.mean[i]-scr.mean[i]) > 1e-9*scale {
				return false
			}
		}
		return inc.cov.Equal(scr.cov, 1e-9*scale)
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The incremental path must preserve exact covariance symmetry without a
// Symmetrize pass, and leave observed rows/columns exactly zero.
func TestObserveExactIncrementalSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		g := randomSPDGaussian(rng, n)
		ws := NewWorkspace(n)
		idx := sortedSubset(rng, n, 1+rng.Intn(n-1))
		vals := make([]float64, len(idx))
		for k := range vals {
			vals[k] = rng.NormFloat64()
		}
		if err := g.ObserveExact(idx, vals, ws); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g.cov.At(i, j) != g.cov.At(j, i) {
					t.Fatalf("cov asymmetric at (%d,%d): %v vs %v", i, j, g.cov.At(i, j), g.cov.At(j, i))
				}
			}
		}
		for _, i := range idx {
			for j := 0; j < n; j++ {
				if g.cov.At(i, j) != 0 || g.cov.At(j, i) != 0 {
					t.Fatalf("observed row/col %d not zeroed", i)
				}
			}
		}
	}
}

// Determinism pin for replica lock-step: two replicas starting from
// identical state and applying identical observations through their own
// workspaces must be bitwise identical afterwards — regardless of what
// evaluator activity warmed one side's cache.
func TestObserveExactReplicaLockStep(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 6
	src := randomSPDGaussian(rng, n)
	snk := src.Clone()
	wsSrc := NewWorkspace(n)
	wsSnk := NewWorkspace(n)

	for epoch := 0; epoch < 50; epoch++ {
		// Only the source runs the hypothesis evaluator (greedy search).
		if err := src.CondReset(wsSrc); err != nil {
			t.Fatal(err)
		}
		// A zero-variance (already observed) candidate is legitimately
		// rejected by the jitterless evaluator — the model layer falls back
		// to the from-scratch search in that case. Either way the evaluator
		// must not influence the state transition below.
		cand := rng.Intn(n)
		if err := src.CondAdd(cand, rng.NormFloat64(), wsSrc); err == nil {
			dst := make([]float64, n)
			if err := src.CondMeanInto(dst, wsSrc); err != nil {
				t.Fatal(err)
			}
		} else if !errors.Is(err, mat.ErrSingular) {
			t.Fatal(err)
		}

		m := 1 + rng.Intn(n-1)
		idx := sortedSubset(rng, n, m)
		vals := make([]float64, m)
		for k := range vals {
			vals[k] = rng.NormFloat64() * 2
		}
		if err := src.ObserveExact(idx, vals, wsSrc); err != nil {
			t.Fatal(err)
		}
		if err := snk.ObserveExact(idx, vals, wsSnk); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if src.mean[i] != snk.mean[i] {
				t.Fatalf("epoch %d: replica means diverge at %d: %v vs %v", epoch, i, src.mean[i], snk.mean[i])
			}
		}
		if !src.cov.Equal(snk.cov, 0) {
			t.Fatalf("epoch %d: replica covariances diverge", epoch)
		}
		// Keep the state conditionable: restore fresh covariance rows by
		// re-seeding both replicas identically every few epochs.
		if epoch%5 == 4 {
			fresh := randomSPDGaussian(rng, n)
			src = fresh.Clone()
			snk = fresh.Clone()
		}
	}
}

// Satellite regression: a non-finite observation must be rejected with
// ErrNotFinite and leave the Gaussian (and workspace generation) untouched.
func TestObserveExactRejectsNonFinite(t *testing.T) {
	g := randomSPDGaussian(rand.New(rand.NewSource(34)), 4)
	ws := NewWorkspace(4)
	meanBefore := g.Mean()
	covBefore := g.Cov()
	genBefore := ws.Generation()
	cases := [][]float64{
		{math.NaN(), 1},
		{1, math.Inf(1)},
		{math.Inf(-1), math.NaN()},
	}
	for _, vals := range cases {
		err := g.ObserveExact([]int{0, 2}, vals, ws)
		if !errors.Is(err, ErrNotFinite) {
			t.Fatalf("ObserveExact(%v) err = %v, want ErrNotFinite", vals, err)
		}
	}
	// Single-index and full-observation dispatch paths too.
	if err := g.ObserveExact([]int{1}, []float64{math.NaN()}, ws); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("single-index NaN err = %v, want ErrNotFinite", err)
	}
	if err := g.ObserveExact([]int{0, 1, 2, 3}, []float64{1, 2, math.Inf(1), 4}, ws); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("point-mass Inf err = %v, want ErrNotFinite", err)
	}
	for i, v := range g.Mean() {
		if v != meanBefore[i] {
			t.Fatalf("mean mutated by rejected observation at %d: %v vs %v", i, v, meanBefore[i])
		}
	}
	if !g.Cov().Equal(covBefore, 0) {
		t.Fatal("covariance mutated by rejected observation")
	}
	if ws.Generation() != genBefore {
		t.Fatal("generation bumped by rejected observation")
	}
}

// The generation counter must tick on every state mutation and nothing else.
func TestWorkspaceGeneration(t *testing.T) {
	n := 3
	g := randomSPDGaussian(rand.New(rand.NewSource(35)), n)
	ws := NewWorkspace(n)
	if ws.Generation() != 0 {
		t.Fatalf("fresh generation = %d, want 0", ws.Generation())
	}
	a := mat.Identity(n)
	q := mat.Identity(n)
	if err := g.Predict(a, a.T(), q, ws); err != nil {
		t.Fatal(err)
	}
	if ws.Generation() != 1 {
		t.Fatalf("generation after Predict = %d, want 1", ws.Generation())
	}
	if err := g.ObserveExact([]int{1}, []float64{2.5}, ws); err != nil {
		t.Fatal(err)
	}
	if ws.Generation() != 2 {
		t.Fatalf("generation after ObserveExact = %d, want 2", ws.Generation())
	}
	// Empty observation set: no mutation, no bump.
	if err := g.ObserveExact(nil, nil, ws); err != nil {
		t.Fatal(err)
	}
	if ws.Generation() != 2 {
		t.Fatalf("generation after empty observation = %d, want 2", ws.Generation())
	}
	// Evaluator reads must not bump either.
	if err := g.CondReset(ws); err != nil {
		t.Fatal(err)
	}
	if err := g.CondAdd(0, 1.0, ws); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, n)
	if err := g.CondMeanInto(dst, ws); err != nil {
		t.Fatal(err)
	}
	if ws.Generation() != 2 {
		t.Fatalf("generation after evaluator reads = %d, want 2", ws.Generation())
	}
}

// The evaluator must answer exactly what ConditionalMean answers (to
// tolerance) for the same growing observed set, with no mutation of g.
func TestQuickCondEvaluatorMatchesConditionalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		g := randomSPDGaussian(r, n)
		ws := NewWorkspace(n)
		if err := g.CondReset(ws); err != nil {
			return false
		}
		obs := map[int]float64{}
		order := r.Perm(n)[:1+r.Intn(n-1)]
		dst := make([]float64, n)
		covBefore := g.Cov()
		for _, i := range order {
			v := g.mean[i] + r.NormFloat64()*2
			if err := g.CondAdd(i, v, ws); err != nil {
				return false
			}
			obs[i] = v
			if err := g.CondMeanInto(dst, ws); err != nil {
				return false
			}
			want, err := g.ConditionalMean(obs)
			if err != nil {
				return false
			}
			for k := range want {
				if math.Abs(dst[k]-want[k]) > 1e-9*(1+math.Abs(want[k])) {
					return false
				}
			}
		}
		return g.Cov().Equal(covBefore, 0)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Cache invalidation: any state mutation after CondReset must make the
// evaluator refuse to answer rather than serve a stale factor.
func TestCondEvaluatorStaleAfterMutation(t *testing.T) {
	n := 4
	g := randomSPDGaussian(rand.New(rand.NewSource(37)), n)
	ws := NewWorkspace(n)
	if err := g.CondReset(ws); err != nil {
		t.Fatal(err)
	}
	if err := g.CondAdd(0, 1, ws); err != nil {
		t.Fatal(err)
	}
	if err := g.ObserveExact([]int{2}, []float64{0.5}, ws); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, n)
	if err := g.CondMeanInto(dst, ws); !errors.Is(err, errCondStale) {
		t.Fatalf("CondMeanInto after mutation err = %v, want errCondStale", err)
	}
	if err := g.CondAdd(1, 1, ws); !errors.Is(err, errCondStale) {
		t.Fatalf("CondAdd after mutation err = %v, want errCondStale", err)
	}
	// A different Gaussian against the same workspace is stale too.
	other := g.Clone()
	if err := g.CondReset(ws); err != nil {
		t.Fatal(err)
	}
	if err := other.CondAdd(0, 1, ws); !errors.Is(err, errCondStale) {
		t.Fatalf("CondAdd for foreign Gaussian err = %v, want errCondStale", err)
	}
	// Re-seeding recovers.
	if err := other.CondReset(ws); err != nil {
		t.Fatal(err)
	}
	if err := other.CondAdd(0, 1, ws); err != nil {
		t.Fatal(err)
	}
	// Duplicate index is rejected.
	if err := other.CondAdd(0, 2, ws); err == nil {
		t.Fatal("duplicate CondAdd succeeded")
	}
	// Non-finite hypothesis is rejected.
	if err := other.CondAdd(1, math.NaN(), ws); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("NaN CondAdd err = %v, want ErrNotFinite", err)
	}
}

// The committed speedup benchmark pair: incremental single-attribute
// conditioning vs the from-scratch batch path, identical state and
// identical restore overhead, so the ratio isolates the conditioning
// kernel. The acceptance bar for the incremental path is ≥2×.
func BenchmarkObserveExactIncremental1(b *testing.B) {
	benchObserve(b, false)
}

func BenchmarkObserveExactScratch1(b *testing.B) {
	benchObserve(b, true)
}

func benchObserve(b *testing.B, scratch bool) {
	const n = 49 // Intel Lab scale: one clique of the 49-node deployment
	rng := rand.New(rand.NewSource(41))
	g := randomSPDGaussian(rng, n)
	ws := NewWorkspace(n)
	base := g.Clone()
	idx := []int{n / 2}
	vals := []float64{1.25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Restore the conditionable state without timing artifacts beyond
		// the copy (identical in both variants).
		g.cov.CopyFrom(base.cov)
		copy(g.mean, base.mean)
		var err error
		if scratch {
			err = g.observeExactBatch(idx, vals, ws)
		} else {
			err = g.ObserveExact(idx, vals, ws)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
