package gauss

import (
	"fmt"

	"ken/internal/mat"
)

// EstimateMean returns the per-column sample mean of data, where data[t] is
// one observation vector at time t.
func EstimateMean(data [][]float64) ([]float64, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	n := len(data[0])
	mean := make([]float64, n)
	for t, row := range data {
		if len(row) != n {
			return nil, fmt.Errorf("gauss: row %d has dim %d, want %d", t, len(row), n)
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(data))
	}
	return mean, nil
}

// EstimateCov returns the unbiased sample covariance of data around mean.
// A small ridge (relative to the average variance) keeps the result usable
// by Cholesky even when attributes are perfectly correlated in the training
// window.
func EstimateCov(data [][]float64, mean []float64, ridge float64) (*mat.Dense, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("gauss: need >= 2 samples to estimate covariance, got %d", len(data))
	}
	n := len(mean)
	cov := mat.NewDense(n, n)
	for t, row := range data {
		if len(row) != n {
			return nil, fmt.Errorf("gauss: row %d has dim %d, want %d", t, len(row), n)
		}
		for i := 0; i < n; i++ {
			di := row[i] - mean[i]
			for j := i; j < n; j++ {
				cov.Add(i, j, di*(row[j]-mean[j]))
			}
		}
	}
	norm := 1 / float64(len(data)-1)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := cov.At(i, j) * norm
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	if ridge > 0 {
		avgVar := 0.0
		for i := 0; i < n; i++ {
			avgVar += cov.At(i, i)
		}
		avgVar /= float64(n)
		if isZero(avgVar) {
			avgVar = 1
		}
		for i := 0; i < n; i++ {
			cov.Add(i, i, ridge*avgVar)
		}
	}
	return cov, nil
}

// Estimate fits a Gaussian to the rows of data with the given relative
// ridge on the covariance diagonal.
func Estimate(data [][]float64, ridge float64) (*Gaussian, error) {
	mean, err := EstimateMean(data)
	if err != nil {
		return nil, err
	}
	cov, err := EstimateCov(data, mean, ridge)
	if err != nil {
		return nil, err
	}
	return New(mean, cov)
}

// CrossCov returns the n×m sample cross-covariance between paired rows of
// x (dim n) and y (dim m): E[(x−μx)(y−μy)ᵀ]. Used to fit the lag-1
// transition model from consecutive trace rows.
func CrossCov(x, y [][]float64, muX, muY []float64) (*mat.Dense, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("gauss: cross-cov sample counts %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return nil, fmt.Errorf("gauss: need >= 2 samples for cross-covariance, got %d", len(x))
	}
	n, m := len(muX), len(muY)
	out := mat.NewDense(n, m)
	for t := range x {
		if len(x[t]) != n || len(y[t]) != m {
			return nil, fmt.Errorf("gauss: cross-cov row %d dims (%d,%d), want (%d,%d)", t, len(x[t]), len(y[t]), n, m)
		}
		for i := 0; i < n; i++ {
			dx := x[t][i] - muX[i]
			for j := 0; j < m; j++ {
				out.Add(i, j, dx*(y[t][j]-muY[j]))
			}
		}
	}
	norm := 1 / float64(len(x)-1)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.Set(i, j, out.At(i, j)*norm)
		}
	}
	return out, nil
}

// isZero reports exact equality with zero. Degenerate-input guards are the
// one place exact float comparison is right: any nonzero value, however
// tiny, is a usable divisor, while a true zero means the computation is
// undefined and must take the fallback path.
//
//lint:comparator exact zero sentinel backing ridge-scale guards
func isZero(v float64) bool { return v == 0 }
