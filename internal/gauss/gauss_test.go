package gauss

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ken/internal/mat"
)

func std2D() *Gaussian {
	return MustNew([]float64{0, 0}, mat.Identity(2))
}

// corr2D builds a 2-D Gaussian with unit variances and correlation rho.
func corr2D(mu1, mu2, rho float64) *Gaussian {
	cov := mat.NewDenseFrom([][]float64{{1, rho}, {rho, 1}})
	return MustNew([]float64{mu1, mu2}, cov)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, mat.Identity(0)); err == nil {
		t.Fatal("expected error for empty mean")
	}
	if _, err := New([]float64{1}, mat.Identity(2)); err == nil {
		t.Fatal("expected error for dim mismatch")
	}
}

func TestMeanCovCopies(t *testing.T) {
	g := std2D()
	m := g.Mean()
	m[0] = 42
	if g.Mean()[0] != 0 {
		t.Fatal("Mean returned a view")
	}
	c := g.Cov()
	c.Set(0, 0, 42)
	if g.Cov().At(0, 0) != 1 {
		t.Fatal("Cov returned a view")
	}
}

func TestLogPDFStandardNormal(t *testing.T) {
	g := MustNew([]float64{0}, mat.Identity(1))
	lp, err := g.LogPDF([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	want := -0.5 * math.Log(2*math.Pi)
	if math.Abs(lp-want) > 1e-12 {
		t.Fatalf("LogPDF(0) = %v, want %v", lp, want)
	}
	p, err := g.PDF([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("PDF(0) = %v", p)
	}
}

func TestLogPDFQuadraticTerm(t *testing.T) {
	g := MustNew([]float64{3}, mat.Diag([]float64{4}))
	lp, err := g.LogPDF([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	// N(3, 4) at 5: -0.5(log 2π + log 4 + (2²)/4)
	want := -0.5 * (math.Log(2*math.Pi) + math.Log(4) + 1)
	if math.Abs(lp-want) > 1e-12 {
		t.Fatalf("LogPDF = %v, want %v", lp, want)
	}
}

func TestMarginal(t *testing.T) {
	cov := mat.NewDenseFrom([][]float64{
		{4, 1, 0},
		{1, 9, 2},
		{0, 2, 16},
	})
	g := MustNew([]float64{1, 2, 3}, cov)
	m, err := g.Marginal([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 2 {
		t.Fatalf("dim = %d, want 2", m.Dim())
	}
	if got := m.Mean(); got[0] != 3 || got[1] != 1 {
		t.Fatalf("marginal mean = %v, want [3 1]", got)
	}
	if m.Var(0) != 16 || m.Var(1) != 4 || m.Cov().At(0, 1) != 0 {
		t.Fatalf("marginal cov = %v", m.Cov())
	}
}

func TestMarginalErrors(t *testing.T) {
	g := std2D()
	if _, err := g.Marginal(nil); err == nil {
		t.Fatal("expected error for empty index set")
	}
	if _, err := g.Marginal([]int{5}); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
}

func TestConditionBivariate(t *testing.T) {
	// Classic result: for unit variances and correlation ρ,
	// X1 | X2 = x ~ N(μ1 + ρ(x − μ2), 1 − ρ²).
	rho := 0.8
	g := corr2D(10, 20, rho)
	cond, keep, err := g.Condition(map[int]float64{1: 22})
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 1 || keep[0] != 0 {
		t.Fatalf("keep = %v, want [0]", keep)
	}
	wantMean := 10 + rho*(22-20)
	if got := cond.Mean()[0]; math.Abs(got-wantMean) > 1e-10 {
		t.Fatalf("conditional mean = %v, want %v", got, wantMean)
	}
	wantVar := 1 - rho*rho
	if got := cond.Var(0); math.Abs(got-wantVar) > 1e-10 {
		t.Fatalf("conditional var = %v, want %v", got, wantVar)
	}
}

func TestConditionNoObservations(t *testing.T) {
	g := corr2D(1, 2, 0.5)
	cond, keep, err := g.Condition(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 2 {
		t.Fatalf("keep = %v", keep)
	}
	if !cond.Cov().Equal(g.Cov(), 1e-12) {
		t.Fatal("conditioning on nothing changed the covariance")
	}
}

func TestConditionAllObserved(t *testing.T) {
	g := corr2D(1, 2, 0.5)
	cond, keep, err := g.Condition(map[int]float64{0: 1.5, 1: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if cond != nil || keep != nil {
		t.Fatal("conditioning on all variables should return point mass (nil)")
	}
}

func TestConditionOutOfRange(t *testing.T) {
	g := std2D()
	if _, _, err := g.Condition(map[int]float64{7: 1}); err == nil {
		t.Fatal("expected error for out-of-range observation index")
	}
}

func TestConditionIndependentUnchanged(t *testing.T) {
	// With zero correlation, conditioning must not move the other variable.
	g := corr2D(5, 6, 0)
	cond, _, err := g.Condition(map[int]float64{1: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := cond.Mean()[0]; math.Abs(got-5) > 1e-12 {
		t.Fatalf("independent conditional mean moved: %v", got)
	}
	if got := cond.Var(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("independent conditional var changed: %v", got)
	}
}

func TestConditionalMean(t *testing.T) {
	rho := 0.5
	g := corr2D(0, 0, rho)
	cm, err := g.ConditionalMean(map[int]float64{0: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cm[0] != 2 {
		t.Fatalf("observed position = %v, want exact observed value", cm[0])
	}
	if math.Abs(cm[1]-rho*2) > 1e-10 {
		t.Fatalf("conditional mean of unobserved = %v, want %v", cm[1], rho*2)
	}
}

func TestConditionalMeanAllObserved(t *testing.T) {
	g := std2D()
	cm, err := g.ConditionalMean(map[int]float64{0: 7, 1: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cm[0] != 7 || cm[1] != 8 {
		t.Fatalf("cm = %v", cm)
	}
}

func TestSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := corr2D(3, -2, 0.7)
	const N = 20000
	sum := []float64{0, 0}
	sumSq := []float64{0, 0}
	sumXY := 0.0
	for i := 0; i < N; i++ {
		x, err := g.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		sum[0] += x[0]
		sum[1] += x[1]
		sumSq[0] += (x[0] - 3) * (x[0] - 3)
		sumSq[1] += (x[1] + 2) * (x[1] + 2)
		sumXY += (x[0] - 3) * (x[1] + 2)
	}
	if m := sum[0] / N; math.Abs(m-3) > 0.05 {
		t.Fatalf("sample mean[0] = %v, want ~3", m)
	}
	if m := sum[1] / N; math.Abs(m+2) > 0.05 {
		t.Fatalf("sample mean[1] = %v, want ~-2", m)
	}
	if v := sumSq[0] / N; math.Abs(v-1) > 0.05 {
		t.Fatalf("sample var[0] = %v, want ~1", v)
	}
	if c := sumXY / N; math.Abs(c-0.7) > 0.05 {
		t.Fatalf("sample cov = %v, want ~0.7", c)
	}
}

func TestEntropy(t *testing.T) {
	g := MustNew([]float64{0}, mat.Diag([]float64{1}))
	h, err := g.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * math.Log(2*math.Pi*math.E)
	if math.Abs(h-want) > 1e-12 {
		t.Fatalf("Entropy = %v, want %v", h, want)
	}
}

func TestEstimateMeanCov(t *testing.T) {
	data := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	mean, err := EstimateMean(data)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0] != 2 || mean[1] != 20 {
		t.Fatalf("mean = %v, want [2 20]", mean)
	}
	cov, err := EstimateCov(data, mean, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov.At(0, 0)-1) > 1e-12 {
		t.Fatalf("var[0] = %v, want 1", cov.At(0, 0))
	}
	if math.Abs(cov.At(0, 1)-10) > 1e-12 {
		t.Fatalf("cov = %v, want 10", cov.At(0, 1))
	}
	if math.Abs(cov.At(1, 1)-100) > 1e-12 {
		t.Fatalf("var[1] = %v, want 100", cov.At(1, 1))
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := EstimateMean(nil); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := EstimateCov([][]float64{{1}}, []float64{1}, 0); err == nil {
		t.Fatal("expected error on single sample")
	}
	if _, err := EstimateMean([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected error on ragged data")
	}
}

func TestEstimateRidgeRescuesDegenerate(t *testing.T) {
	// Two perfectly correlated attributes: covariance is singular without
	// ridge; Estimate with ridge must produce a usable Gaussian.
	data := make([][]float64, 50)
	rng := rand.New(rand.NewSource(12))
	for t := range data {
		v := rng.NormFloat64()
		data[t] = []float64{v, v}
	}
	g, err := Estimate(data, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.LogPDF([]float64{0, 0}); err != nil {
		t.Fatalf("ridge-regularised Gaussian unusable: %v", err)
	}
}

func TestCrossCov(t *testing.T) {
	// y = 2x ⇒ cross-cov = 2·var(x).
	x := [][]float64{{1}, {2}, {3}}
	y := [][]float64{{2}, {4}, {6}}
	muX, _ := EstimateMean(x)
	muY, _ := EstimateMean(y)
	cc, err := CrossCov(x, y, muX, muY)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cc.At(0, 0)-2) > 1e-12 {
		t.Fatalf("cross-cov = %v, want 2", cc.At(0, 0))
	}
}

func TestCrossCovErrors(t *testing.T) {
	if _, err := CrossCov([][]float64{{1}}, [][]float64{{1}, {2}}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("expected error on mismatched sample counts")
	}
	if _, err := CrossCov([][]float64{{1}}, [][]float64{{1}}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("expected error on too few samples")
	}
}

// Property: conditioning never increases any retained variable's variance.
func TestQuickConditioningShrinksVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		// Random SPD covariance.
		b := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, r.NormFloat64())
			}
		}
		cov, _ := b.Mul(b.T())
		for i := 0; i < n; i++ {
			cov.Add(i, i, 0.5)
		}
		mean := make([]float64, n)
		for i := range mean {
			mean[i] = r.NormFloat64() * 10
		}
		g, err := New(mean, cov)
		if err != nil {
			return false
		}
		// Observe a random non-empty strict subset.
		k := 1 + r.Intn(n-1)
		perm := r.Perm(n)
		obs := map[int]float64{}
		for _, i := range perm[:k] {
			obs[i] = r.NormFloat64() * 10
		}
		cond, keep, err := g.Condition(obs)
		if err != nil {
			return false
		}
		for pos, i := range keep {
			if cond.Var(pos) > g.Var(i)+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: marginalising then conditioning equals conditioning then
// marginalising for disjoint index sets (Gaussian consistency).
func TestQuickMarginalConditionConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		b := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, r.NormFloat64())
			}
		}
		cov, _ := b.Mul(b.T())
		for i := 0; i < n; i++ {
			cov.Add(i, i, 1)
		}
		mean := make([]float64, n)
		g, err := New(mean, cov)
		if err != nil {
			return false
		}
		obsVal := r.NormFloat64() * 3
		// Condition full joint on X_{n-1}, then look at variable 0.
		condFull, keep, err := g.Condition(map[int]float64{n - 1: obsVal})
		if err != nil {
			return false
		}
		pos := -1
		for p, i := range keep {
			if i == 0 {
				pos = p
			}
		}
		// Marginalise to {0, n-1}, then condition on X_{n-1}.
		marg, err := g.Marginal([]int{0, n - 1})
		if err != nil {
			return false
		}
		condMarg, _, err := marg.Condition(map[int]float64{1: obsVal})
		if err != nil {
			return false
		}
		return math.Abs(condFull.Mean()[pos]-condMarg.Mean()[0]) < 1e-8 &&
			math.Abs(condFull.Var(pos)-condMarg.Var(0)) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: estimated mean/cov from samples of a known Gaussian converge.
func TestEstimateRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := corr2D(1, 2, -0.6)
	data := make([][]float64, 8000)
	for i := range data {
		x, err := g.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		data[i] = x
	}
	est, err := Estimate(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := est.Mean(); math.Abs(m[0]-1) > 0.08 || math.Abs(m[1]-2) > 0.08 {
		t.Fatalf("estimated mean = %v", m)
	}
	if c := est.Cov(); math.Abs(c.At(0, 1)+0.6) > 0.08 {
		t.Fatalf("estimated corr = %v", c.At(0, 1))
	}
}

func TestKLProperties(t *testing.T) {
	g1 := corr2D(0, 0, 0.5)
	g2 := corr2D(1, -1, 0.2)
	// Self-divergence is zero.
	if d, err := g1.KL(g1); err != nil || math.Abs(d) > 1e-10 {
		t.Fatalf("KL(g,g) = %v, %v", d, err)
	}
	// Non-negative and asymmetric in general.
	d12, err := g1.KL(g2)
	if err != nil {
		t.Fatal(err)
	}
	d21, err := g2.KL(g1)
	if err != nil {
		t.Fatal(err)
	}
	if d12 <= 0 || d21 <= 0 {
		t.Fatalf("KL must be positive for distinct Gaussians: %v, %v", d12, d21)
	}
	// Closed-form check for 1-D: D(N(0,1)‖N(m,1)) = m²/2.
	a := MustNew([]float64{0}, mat.Diag([]float64{1}))
	b := MustNew([]float64{2}, mat.Diag([]float64{1}))
	d, err := a.KL(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-10 {
		t.Fatalf("KL = %v, want 2", d)
	}
	// Dimension mismatch.
	if _, err := a.KL(g1); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestConditionNoisyZeroNoiseMatchesExact(t *testing.T) {
	g := corr2D(10, 20, 0.8)
	noisy, err := g.ConditionNoisy(map[int]float64{1: 22}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, keep, err := g.Condition(map[int]float64{1: 22})
	if err != nil {
		t.Fatal(err)
	}
	if keep[0] != 0 {
		t.Fatal("unexpected keep")
	}
	if math.Abs(noisy.Mean()[0]-exact.Mean()[0]) > 1e-9 {
		t.Fatalf("noiseless update mean %v vs exact %v", noisy.Mean()[0], exact.Mean()[0])
	}
	if math.Abs(noisy.Var(0)-exact.Var(0)) > 1e-9 {
		t.Fatalf("noiseless update var %v vs exact %v", noisy.Var(0), exact.Var(0))
	}
	// The observed attribute collapses to the observation.
	if math.Abs(noisy.Mean()[1]-22) > 1e-9 || noisy.Var(1) > 1e-9 {
		t.Fatalf("observed attribute not collapsed: mean %v var %v", noisy.Mean()[1], noisy.Var(1))
	}
}

func TestConditionNoisyLargeNoiseBarelyMoves(t *testing.T) {
	g := corr2D(10, 20, 0.8)
	noisy, err := g.ConditionNoisy(map[int]float64{1: 30}, map[int]float64{1: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noisy.Mean()[1]-20) > 0.01 {
		t.Fatalf("huge-noise observation moved the mean to %v", noisy.Mean()[1])
	}
	if noisy.Var(1) < 0.99 {
		t.Fatalf("huge-noise observation removed variance: %v", noisy.Var(1))
	}
}

func TestConditionNoisyInterpolates(t *testing.T) {
	// Standard 1-D Kalman: prior N(0,1), observation 2 with R=1 → posterior
	// mean 1, variance 0.5.
	g := MustNew([]float64{0}, mat.Diag([]float64{1}))
	post, err := g.ConditionNoisy(map[int]float64{0: 2}, map[int]float64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post.Mean()[0]-1) > 1e-10 {
		t.Fatalf("posterior mean %v, want 1", post.Mean()[0])
	}
	if math.Abs(post.Var(0)-0.5) > 1e-10 {
		t.Fatalf("posterior var %v, want 0.5", post.Var(0))
	}
}

func TestConditionNoisyValidation(t *testing.T) {
	g := std2D()
	if _, err := g.ConditionNoisy(map[int]float64{9: 1}, nil); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
	if _, err := g.ConditionNoisy(map[int]float64{0: 1}, map[int]float64{1: 1}); err == nil {
		t.Fatal("expected error for noise on unobserved attribute")
	}
	if _, err := g.ConditionNoisy(map[int]float64{0: 1}, map[int]float64{0: -1}); err == nil {
		t.Fatal("expected error for negative noise variance")
	}
	same, err := g.ConditionNoisy(nil, nil)
	if err != nil || !same.Cov().Equal(g.Cov(), 0) {
		t.Fatal("empty observation should clone")
	}
}
