package gauss

import (
	"testing"

	"ken/internal/alloctest"
	"ken/internal/mat"
)

// TestAllocBudgetGauss pins the workspace-backed belief updates at zero
// heap allocations per epoch — the committed budget table in docs/LINT.md.
func TestAllocBudgetGauss(t *testing.T) {
	if alloctest.RaceEnabled {
		t.Skip("alloc budgets are not meaningful under -race")
	}
	const n = 5
	mean := make([]float64, n)
	cov := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		mean[i] = float64(i)
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			cov.Set(i, j, 1/float64(1+d))
		}
		cov.Add(i, i, 2)
	}
	g := MustNew(mean, cov)
	a := mat.NewDense(n, n)
	q := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 0.9)
		a.Set(i, (i+1)%n, 0.05)
		q.Set(i, i, 0.1)
	}
	aT := a.T()
	ws := NewWorkspace(n)
	dst := make([]float64, n)
	idx := []int{1, 3}
	vals := []float64{0.5, -0.25}

	budget := func(name string, want float64, f func()) {
		t.Helper()
		if got := testing.AllocsPerRun(100, f); got != want {
			t.Errorf("%s: %v allocs/op, budget %v", name, got, want)
		}
	}
	budget("MeanInto", 0, func() {
		if err := g.MeanInto(dst); err != nil {
			t.Fatal(err)
		}
	})
	budget("Predict", 0, func() {
		if err := g.Predict(a, aT, q, ws); err != nil {
			t.Fatal(err)
		}
	})
	// ObserveExact zeroes the observed rows/columns, so each run predicts
	// first to restore a positive-definite observed block (as the protocol
	// does every epoch).
	budget("Predict+ObserveExact", 0, func() {
		if err := g.Predict(a, aT, q, ws); err != nil {
			t.Fatal(err)
		}
		if err := g.ObserveExact(idx, vals, ws); err != nil {
			t.Fatal(err)
		}
	})
	// The single-observation rank-1 fast path.
	budget("Predict+ObserveExact1", 0, func() {
		if err := g.Predict(a, aT, q, ws); err != nil {
			t.Fatal(err)
		}
		if err := g.ObserveExact(idx[:1], vals[:1], ws); err != nil {
			t.Fatal(err)
		}
	})
	// The incremental conditioning evaluator: reset, grow the cached
	// factor by two indices, answer twice — the shape of one greedy round.
	budget("CondReset+CondAdd+CondMeanInto", 0, func() {
		if err := g.Predict(a, aT, q, ws); err != nil {
			t.Fatal(err)
		}
		if err := g.CondReset(ws); err != nil {
			t.Fatal(err)
		}
		if err := g.CondAdd(1, 0.5, ws); err != nil {
			t.Fatal(err)
		}
		if err := g.CondMeanInto(dst, ws); err != nil {
			t.Fatal(err)
		}
		if err := g.CondAdd(3, -0.25, ws); err != nil {
			t.Fatal(err)
		}
		if err := g.CondMeanInto(dst, ws); err != nil {
			t.Fatal(err)
		}
	})
}
