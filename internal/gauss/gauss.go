// Package gauss implements the multivariate Gaussian machinery at the heart
// of Ken's dynamic probabilistic models (ICDE'06 §3.1): probability density
// evaluation, marginalisation, conditioning on observed attribute subsets,
// sampling, and parameter estimation from training traces.
//
// Conditioning is the operation Ken performs when the source transmits a
// subset of observed values to the sink: both replicas update
// p(X | X_obs = x_obs) and continue from the conditioned distribution.
package gauss

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ken/internal/mat"
)

// ErrEmpty is returned when an operation needs at least one variable or
// sample and none was supplied.
var ErrEmpty = errors.New("gauss: empty input")

// ErrNotFinite is returned when an observation value is NaN or ±Inf.
// Conditioning is irreversible — a non-finite value reaching the mean
// update would corrupt the distribution permanently — so observations are
// validated before any state is touched.
var ErrNotFinite = errors.New("gauss: observation not finite")

// Gaussian is an n-dimensional Gaussian distribution N(mean, cov).
// The zero value is not usable; construct with New.
type Gaussian struct {
	mean []float64
	cov  *mat.Dense
}

// New constructs a Gaussian from a mean vector and covariance matrix.
// The inputs are copied. The covariance must be square, symmetric (within
// floating-point tolerance; it is symmetrised), and match the mean length.
func New(mean []float64, cov *mat.Dense) (*Gaussian, error) {
	n := len(mean)
	if n == 0 {
		return nil, ErrEmpty
	}
	if cov.Rows() != n || cov.Cols() != n {
		return nil, fmt.Errorf("gauss: cov is %dx%d, mean has dim %d", cov.Rows(), cov.Cols(), n)
	}
	m := make([]float64, n)
	copy(m, mean)
	c := cov.Clone()
	c.Symmetrize()
	return &Gaussian{mean: m, cov: c}, nil
}

// MustNew is New panicking on error, for statically-correct literals in
// tests and examples.
func MustNew(mean []float64, cov *mat.Dense) *Gaussian {
	g, err := New(mean, cov)
	if err != nil {
		panic(err)
	}
	return g
}

// Dim returns the dimensionality n.
func (g *Gaussian) Dim() int { return len(g.mean) }

// Mean returns a copy of the mean vector. In Ken the mean is the sink's
// approximate answer X̂ to the SELECT * query.
func (g *Gaussian) Mean() []float64 {
	out := make([]float64, len(g.mean))
	copy(out, g.mean)
	return out
}

// Cov returns a copy of the covariance matrix.
func (g *Gaussian) Cov() *mat.Dense { return g.cov.Clone() }

// Var returns the marginal variance of variable i.
func (g *Gaussian) Var(i int) float64 { return g.cov.At(i, i) }

// Clone returns a deep copy.
func (g *Gaussian) Clone() *Gaussian {
	return &Gaussian{mean: g.Mean(), cov: g.cov.Clone()}
}

// LogPDF evaluates the log density at x.
func (g *Gaussian) LogPDF(x []float64) (float64, error) {
	n := g.Dim()
	if len(x) != n {
		return 0, fmt.Errorf("gauss: LogPDF input dim %d, want %d", len(x), n)
	}
	ch, err := mat.NewCholesky(g.cov)
	if err != nil {
		return 0, fmt.Errorf("gauss: covariance not PD: %w", err)
	}
	d := mat.SubVec(x, g.mean)
	sol, err := ch.SolveVec(d)
	if err != nil {
		return 0, err
	}
	quad := mat.Dot(d, sol)
	return -0.5 * (float64(n)*math.Log(2*math.Pi) + ch.LogDet() + quad), nil
}

// PDF evaluates the density at x.
func (g *Gaussian) PDF(x []float64) (float64, error) {
	lp, err := g.LogPDF(x)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// Marginal returns the marginal distribution of the variables at idx, in
// that order. For Gaussians marginalisation is simply selection of the
// corresponding mean entries and covariance block.
func (g *Gaussian) Marginal(idx []int) (*Gaussian, error) {
	if len(idx) == 0 {
		return nil, ErrEmpty
	}
	for _, i := range idx {
		if i < 0 || i >= g.Dim() {
			return nil, fmt.Errorf("gauss: marginal index %d out of range %d", i, g.Dim())
		}
	}
	return &Gaussian{
		mean: mat.Select(g.mean, idx),
		cov:  g.cov.Submatrix(idx, idx),
	}, nil
}

// Condition returns the conditional distribution of the remaining variables
// given the observations obs (variable index → observed value). This is the
// model update both Ken replicas apply when a subset of values is reported
// (paper §3.2, source step 4 / sink step 2).
//
// The returned keep slice lists, in order, the original indices of the
// variables of the conditional distribution. If every variable is observed,
// Condition returns (nil, nil, nil): the posterior is a point mass.
func (g *Gaussian) Condition(obs map[int]float64) (cond *Gaussian, keep []int, err error) {
	n := g.Dim()
	if len(obs) == 0 {
		return g.Clone(), identityIndex(n), nil
	}
	obsIdx := make([]int, 0, len(obs))
	for i := range obs {
		if i < 0 || i >= n {
			return nil, nil, fmt.Errorf("gauss: condition index %d out of range %d", i, n)
		}
		obsIdx = append(obsIdx, i)
	}
	sort.Ints(obsIdx)
	keep = complementIndex(n, obsIdx)
	if len(keep) == 0 {
		return nil, nil, nil
	}

	// Partition: a = kept, b = observed.
	// μ_a|b = μ_a + Σ_ab Σ_bb⁻¹ (x_b − μ_b)
	// Σ_a|b = Σ_aa − Σ_ab Σ_bb⁻¹ Σ_ba
	sigAA := g.cov.Submatrix(keep, keep)
	sigAB := g.cov.Submatrix(keep, obsIdx)
	sigBB := g.cov.Submatrix(obsIdx, obsIdx)

	chBB, err := mat.NewCholesky(sigBB)
	if err != nil {
		return nil, nil, fmt.Errorf("gauss: observed block not PD: %w", err)
	}
	// delta = x_b − μ_b
	delta := make([]float64, len(obsIdx))
	for k, i := range obsIdx {
		delta[k] = obs[i] - g.mean[i]
	}
	w, err := chBB.SolveVec(delta) // Σ_bb⁻¹ δ
	if err != nil {
		return nil, nil, err
	}
	adj, err := sigAB.MulVec(w)
	if err != nil {
		return nil, nil, err
	}
	muCond := mat.AddVec(mat.Select(g.mean, keep), adj)

	// Σ_bb⁻¹ Σ_ba via Cholesky solve, no explicit inverse.
	solved, err := chBB.Solve(sigAB.T())
	if err != nil {
		return nil, nil, err
	}
	corr, err := sigAB.Mul(solved)
	if err != nil {
		return nil, nil, err
	}
	covCond, err := sigAA.SubMat(corr)
	if err != nil {
		return nil, nil, err
	}
	covCond.Symmetrize()
	return &Gaussian{mean: muCond, cov: covCond}, keep, nil
}

// ConditionalMean returns only the full-length conditional mean: observed
// positions take their observed values, unobserved positions take their
// conditional expectations. This is the sink's post-report answer vector and
// the quantity the source checks against ε.
func (g *Gaussian) ConditionalMean(obs map[int]float64) ([]float64, error) {
	n := g.Dim()
	out := make([]float64, n)
	cond, keep, err := g.Condition(obs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if v, ok := obs[i]; ok {
			out[i] = v
		}
	}
	if cond != nil {
		cm := cond.Mean()
		for k, i := range keep {
			out[i] = cm[k]
		}
	}
	return out, nil
}

// Sample draws one sample using the provided random source.
func (g *Gaussian) Sample(rng *rand.Rand) ([]float64, error) {
	ch, err := mat.NewCholesky(g.cov)
	if err != nil {
		return nil, fmt.Errorf("gauss: covariance not PD: %w", err)
	}
	z := make([]float64, g.Dim())
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	lz, err := ch.MulLVec(z)
	if err != nil {
		return nil, err
	}
	return mat.AddVec(g.mean, lz), nil
}

// Entropy returns the differential entropy in nats.
func (g *Gaussian) Entropy() (float64, error) {
	ch, err := mat.NewCholesky(g.cov)
	if err != nil {
		return 0, err
	}
	n := float64(g.Dim())
	return 0.5*ch.LogDet() + 0.5*n*(1+math.Log(2*math.Pi)), nil
}

func identityIndex(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// complementIndex returns {0..n-1} \ sortedIdx, in increasing order.
func complementIndex(n int, sortedIdx []int) []int {
	out := make([]int, 0, n-len(sortedIdx))
	k := 0
	for i := 0; i < n; i++ {
		if k < len(sortedIdx) && sortedIdx[k] == i {
			k++
			continue
		}
		out = append(out, i)
	}
	return out
}

// KL returns the Kullback–Leibler divergence D(g‖other) in nats:
//
//	½ [ tr(Σ₂⁻¹Σ₁) + (μ₂−μ₁)ᵀΣ₂⁻¹(μ₂−μ₁) − n + ln(|Σ₂|/|Σ₁|) ]
//
// A drift monitor can compare a refit model's state against the deployed
// one to decide whether re-synchronising parameters is worth the traffic.
func (g *Gaussian) KL(other *Gaussian) (float64, error) {
	n := g.Dim()
	if other.Dim() != n {
		return 0, fmt.Errorf("gauss: KL dims %d vs %d", n, other.Dim())
	}
	ch1, err := mat.NewCholesky(g.cov)
	if err != nil {
		return 0, fmt.Errorf("gauss: first covariance not PD: %w", err)
	}
	ch2, err := mat.NewCholesky(other.cov)
	if err != nil {
		return 0, fmt.Errorf("gauss: second covariance not PD: %w", err)
	}
	// tr(Σ₂⁻¹Σ₁) via solves.
	solved, err := ch2.Solve(g.cov)
	if err != nil {
		return 0, err
	}
	tr := 0.0
	for i := 0; i < n; i++ {
		tr += solved.At(i, i)
	}
	d := mat.SubVec(other.mean, g.mean)
	w, err := ch2.SolveVec(d)
	if err != nil {
		return 0, err
	}
	quad := mat.Dot(d, w)
	return 0.5 * (tr + quad - float64(n) + ch2.LogDet() - ch1.LogDet()), nil
}

// ConditionNoisy is Condition for imperfect observations: each reported
// value is modelled as the true attribute plus independent zero-mean
// Gaussian noise with the given variance (ADC quantisation, sensor noise).
// Exact conditioning is the special case of zero noise variances. Unlike
// Condition, observed attributes retain posterior uncertainty, so the
// full-dimensional posterior over all n variables is returned.
//
// This is the measurement update of a Kalman filter: with H selecting the
// observed block and R the diagonal noise covariance,
//
//	K = Σ Hᵀ (H Σ Hᵀ + R)⁻¹,  μ ← μ + K(z − Hμ),  Σ ← Σ − K H Σ.
func (g *Gaussian) ConditionNoisy(obs map[int]float64, noiseVar map[int]float64) (*Gaussian, error) {
	n := g.Dim()
	if len(obs) == 0 {
		return g.Clone(), nil
	}
	obsIdx := make([]int, 0, len(obs))
	for i := range obs {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("gauss: condition index %d out of range %d", i, n)
		}
		obsIdx = append(obsIdx, i)
	}
	sort.Ints(obsIdx)
	for i, v := range noiseVar {
		if _, ok := obs[i]; !ok {
			return nil, fmt.Errorf("gauss: noise variance for unobserved attribute %d", i)
		}
		if v < 0 {
			return nil, fmt.Errorf("gauss: negative noise variance %v for attribute %d", v, i)
		}
	}

	all := identityIndex(n)
	sigAll := g.cov.Submatrix(all, obsIdx) // Σ Hᵀ, n×m
	sigBB := g.cov.Submatrix(obsIdx, obsIdx)
	for k, i := range obsIdx {
		sigBB.Add(k, k, noiseVar[i])
	}
	ch, err := mat.NewCholesky(sigBB)
	if err != nil {
		return nil, fmt.Errorf("gauss: innovation covariance not PD: %w", err)
	}
	delta := make([]float64, len(obsIdx))
	for k, i := range obsIdx {
		delta[k] = obs[i] - g.mean[i]
	}
	w, err := ch.SolveVec(delta)
	if err != nil {
		return nil, err
	}
	adj, err := sigAll.MulVec(w)
	if err != nil {
		return nil, err
	}
	mean := mat.AddVec(g.mean, adj)

	solved, err := ch.Solve(sigAll.T()) // (HΣHᵀ+R)⁻¹ H Σ, m×n
	if err != nil {
		return nil, err
	}
	corr, err := sigAll.Mul(solved) // ΣHᵀ(HΣHᵀ+R)⁻¹HΣ, n×n
	if err != nil {
		return nil, err
	}
	cov, err := g.cov.SubMat(corr)
	if err != nil {
		return nil, err
	}
	cov.Symmetrize()
	return New(mean, cov)
}
