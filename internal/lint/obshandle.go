package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ken/internal/lint/driver"
)

// ObsHandle enforces the three handle rules of docs/OBSERVABILITY.md's nil
// fast path. First, metric handles are resolved once at construction time:
// a Registry.Counter/Gauge/Histogram/Timer lookup inside a loop re-takes
// the registry mutex and re-hashes the name on every iteration, defeating
// the "instrumentation must cost nothing" design (and a lookup per
// iteration is how accidental per-step metric families get minted). The
// same applies to scoped trace views: Tracer.WithScope and Observer.Scoped
// allocate a view per call, so building one inside a loop mints garbage on
// the hot path — resolve the view once outside. Second, handles are
// already nil-safe, so guarding a call site with `if h != nil`
// re-introduces the branch the design removed — call the handle
// unconditionally. Third, epoch spans have a sanctioned liveness guard:
// comparing a *obs.Span against nil conflates "no span" with "span on a
// detached tracer"; emission sites must use sp.Active(). (Tracer and
// Observer nil checks are sanctioned — trace emission sites guard to
// avoid building event payloads — and the obs package itself is excluded
// since its implementation is the nil checks.)
var ObsHandle = &driver.Analyzer{
	Name: "obshandle",
	Doc: "flags obs.Registry metric-handle lookups and scoped trace-view " +
		"construction (Tracer.WithScope, Observer.Scoped) inside loops (resolve " +
		"handles once at construction), nil comparisons against nil-safe metric " +
		"handles (*obs.Counter/Gauge/Histogram/Timer — call them unconditionally), " +
		"and nil comparisons against *obs.Span (guard emission with sp.Active())",
	Scope: driver.ScopeNot("internal/obs"),
	Run:   runObsHandle,
}

// registryLookupNames are the handle-minting methods of *obs.Registry.
var registryLookupNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Timer": true,
}

// scopeViewMethods are the per-receiver methods that mint a scoped trace
// view; like registry lookups, they belong at construction time, not in
// loop bodies.
var scopeViewMethods = map[string]map[string]bool{
	"Tracer":   {"WithScope": true},
	"Observer": {"Scoped": true},
}

// nilSafeHandleNames are the obs types whose methods are nil-safe and
// which therefore must not be nil-guarded at call sites. Tracer and
// Observer are deliberately absent (see the analyzer doc); Span gets a
// dedicated diagnostic pointing at Active().
var nilSafeHandleNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Timer": true,
}

func runObsHandle(pass *driver.Pass) error {
	info := pass.Pkg.Info
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			flagLookupsIn(pass, info, n.Body)
		case *ast.RangeStmt:
			flagLookupsIn(pass, info, n.Body)
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			var other ast.Expr
			switch {
			case isNilIdent(info, n.X):
				other = n.Y
			case isNilIdent(info, n.Y):
				other = n.X
			default:
				return true
			}
			switch name, ok := obsHandleType(info.TypeOf(other)); {
			case ok:
				pass.Reportf(n.Pos(),
					"nil check on *obs.%s: handles are nil-safe, call them unconditionally "+
						"(docs/OBSERVABILITY.md, nil fast path)", name)
			case isObsSpan(info.TypeOf(other)):
				pass.Reportf(n.Pos(),
					"nil check on *obs.Span: spans are nil-safe, guard emission with "+
						"sp.Active() (docs/OBSERVABILITY.md, causal spans)")
			}
		}
		return true
	})
	return nil
}

// flagLookupsIn reports registry handle lookups inside a loop body.
// Nested loops revisit inner statements; report positions de-duplicate in
// the driver only across ignore filtering, so descend into nested function
// literals and loops exactly once from the outermost loop.
func flagLookupsIn(pass *driver.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// The walk that reaches this inner loop's enclosing statement
			// already covers its body; skipping here keeps one report per
			// call site.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if fn == nil || !isMethod(fn) || !fromPkg(fn, "internal/obs") {
			return true
		}
		recv, _ := namedPointee(fn.Type().(*types.Signature).Recv().Type())
		switch {
		case recv == "Registry" && registryLookupNames[fn.Name()]:
			pass.Reportf(call.Pos(),
				"Registry.%s lookup inside a loop: resolve metric handles once at "+
					"construction time (docs/OBSERVABILITY.md, nil fast path)", fn.Name())
		case scopeViewMethods[recv][fn.Name()]:
			pass.Reportf(call.Pos(),
				"%s.%s builds a scoped trace view inside a loop: resolve the view "+
					"once outside (docs/OBSERVABILITY.md, nil fast path)", recv, fn.Name())
		}
		return true
	})
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// obsHandleType reports whether t is a pointer to one of the nil-safe
// obs handle types, returning the type name.
func obsHandleType(t types.Type) (string, bool) {
	name, pkg := namedPointee(t)
	if pkg == nil || !nilSafeHandleNames[name] {
		return "", false
	}
	p := pkg.Path()
	if p == "internal/obs" || strings.HasSuffix(p, "/internal/obs") {
		return name, true
	}
	return "", false
}

// isObsSpan reports whether t is *obs.Span.
func isObsSpan(t types.Type) bool {
	name, pkg := namedPointee(t)
	if name != "Span" || pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "internal/obs" || strings.HasSuffix(p, "/internal/obs")
}

// namedPointee unwraps *Named and returns the named type's name and
// package ("" / nil when t is not a pointer to a named type).
func namedPointee(t types.Type) (string, *types.Package) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", nil
	}
	return named.Obj().Name(), named.Obj().Pkg()
}
