package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ken/internal/lint/driver"
)

// ObsHandle enforces the two handle rules of docs/OBSERVABILITY.md's nil
// fast path. First, metric handles are resolved once at construction time:
// a Registry.Counter/Gauge/Histogram/Timer lookup inside a loop re-takes
// the registry mutex and re-hashes the name on every iteration, defeating
// the "instrumentation must cost nothing" design (and a lookup per
// iteration is how accidental per-step metric families get minted).
// Second, handles are already nil-safe, so guarding a call site with
// `if h != nil` re-introduces the branch the design removed — call the
// handle unconditionally. (Tracer nil checks are sanctioned — trace
// emission sites guard to avoid building event payloads — and the obs
// package itself is excluded since its implementation is the nil checks.)
var ObsHandle = &driver.Analyzer{
	Name: "obshandle",
	Doc: "flags obs.Registry metric-handle lookups inside loops (resolve handles " +
		"once at construction) and nil comparisons against nil-safe metric handles " +
		"(*obs.Counter/Gauge/Histogram/Timer — call them unconditionally)",
	Scope: driver.ScopeNot("internal/obs"),
	Run:   runObsHandle,
}

// registryLookupNames are the handle-minting methods of *obs.Registry.
var registryLookupNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Timer": true,
}

// nilSafeHandleNames are the obs types whose methods are nil-safe and
// which therefore must not be nil-guarded at call sites. Tracer and
// Observer are deliberately absent (see the analyzer doc).
var nilSafeHandleNames = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "Timer": true,
}

func runObsHandle(pass *driver.Pass) error {
	info := pass.Pkg.Info
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			flagLookupsIn(pass, info, n.Body)
		case *ast.RangeStmt:
			flagLookupsIn(pass, info, n.Body)
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			var other ast.Expr
			switch {
			case isNilIdent(info, n.X):
				other = n.Y
			case isNilIdent(info, n.Y):
				other = n.X
			default:
				return true
			}
			if name, ok := obsHandleType(info.TypeOf(other)); ok {
				pass.Reportf(n.Pos(),
					"nil check on *obs.%s: handles are nil-safe, call them unconditionally "+
						"(docs/OBSERVABILITY.md, nil fast path)", name)
			}
		}
		return true
	})
	return nil
}

// flagLookupsIn reports registry handle lookups inside a loop body.
// Nested loops revisit inner statements; report positions de-duplicate in
// the driver only across ignore filtering, so descend into nested function
// literals and loops exactly once from the outermost loop.
func flagLookupsIn(pass *driver.Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// The walk that reaches this inner loop's enclosing statement
			// already covers its body; skipping here keeps one report per
			// call site.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if fn == nil || !isMethod(fn) || !fromPkg(fn, "internal/obs") || !registryLookupNames[fn.Name()] {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv().Type()
		if name, _ := namedPointee(recv); name == "Registry" {
			pass.Reportf(call.Pos(),
				"Registry.%s lookup inside a loop: resolve metric handles once at "+
					"construction time (docs/OBSERVABILITY.md, nil fast path)", fn.Name())
		}
		return true
	})
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// obsHandleType reports whether t is a pointer to one of the nil-safe
// obs handle types, returning the type name.
func obsHandleType(t types.Type) (string, bool) {
	name, pkg := namedPointee(t)
	if pkg == nil || !nilSafeHandleNames[name] {
		return "", false
	}
	p := pkg.Path()
	if p == "internal/obs" || strings.HasSuffix(p, "/internal/obs") {
		return name, true
	}
	return "", false
}

// namedPointee unwraps *Named and returns the named type's name and
// package ("" / nil when t is not a pointer to a named type).
func namedPointee(t types.Type) (string, *types.Package) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", nil
	}
	return named.Obj().Name(), named.Obj().Pkg()
}
