package lint

import (
	"go/ast"
	"go/types"

	"ken/internal/lint/driver"
)

// MapRange guards the output-determinism half of the engine contract
// (docs/ENGINE.md: "a -parallel 8 run must produce byte-identical tables
// to -parallel 1" — and a rerun must produce byte-identical tables to the
// previous run). Go's map iteration order is deliberately randomized, so a
// `for range someMap` whose body appends to a slice, writes output, or
// emits events leaks that random order into tables and traces. Iterations
// that only do commutative work (summing, counting, filling another map,
// bumping obs counters) are fine and not flagged.
var MapRange = &driver.Analyzer{
	Name: "maprange",
	Doc: "flags `for range` over a map whose body appends to a slice (unless the " +
		"slice is sorted afterwards in the same function), writes formatted output, " +
		"or emits events/frames — map order is randomized and leaks into results",
	Run: runMapRange,
}

// emitMethodNames are method names treated as ordered output sinks.
var emitMethodNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRow": true, "Emit": true, "Encode": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapRange(pass *driver.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkMapRanges(pass, info, body)
			return true
		})
	}
	return nil
}

// checkMapRanges inspects one function body. funcBody is also the search
// window for the sorted-afterwards exemption.
func checkMapRanges(pass *driver.Pass, info *types.Info, funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		// Nested function literals get their own checkMapRanges call with
		// their own sort window; do not descend into them here.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		reportOrderLeaks(pass, info, rng, funcBody)
		return true
	})
}

// reportOrderLeaks flags the order-dependent statements inside one
// map-range body.
func reportOrderLeaks(pass *driver.Pass, info *types.Info, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map: delivery order follows the randomized "+
					"map iteration order")
		case *ast.AssignStmt:
			obj, ok := appendTarget(info, n)
			if !ok {
				return true
			}
			// A slice declared inside the range body is rebuilt from
			// scratch on every iteration; its element order comes from the
			// body's own control flow, not from which key the map handed
			// out first.
			if obj.Pos() >= rng.Body.Pos() && obj.Pos() < rng.Body.End() {
				return true
			}
			if !sortedAfter(info, funcBody, rng, obj) {
				pass.Reportf(n.Pos(),
					"append to %q inside range over map without sorting it afterwards: "+
						"element order follows the randomized map iteration order", obj.Name())
			}
		case *ast.CallExpr:
			fn := callee(info, n)
			if fn == nil {
				return true
			}
			name := fn.Name()
			switch {
			case fromPkg(fn, "fmt") && !isMethod(fn) &&
				(name == "Print" || name == "Printf" || name == "Println" ||
					name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
				pass.Reportf(n.Pos(),
					"fmt.%s inside range over map: output line order follows the randomized "+
						"map iteration order", name)
			case isMethod(fn) && emitMethodNames[name] && !fromPkg(fn, "internal/obs"):
				pass.Reportf(n.Pos(),
					"%s call inside range over map: emission order follows the randomized "+
						"map iteration order", name)
			}
		}
		return true
	})
}

// appendTarget matches `x = append(x, ...)` / `x := append(x, ...)` (also
// the +=-style multi-assign forms) and returns the object appended to.
func appendTarget(info *types.Info, asg *ast.AssignStmt) (types.Object, bool) {
	for i, rhs := range asg.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if i >= len(asg.Lhs) {
			continue
		}
		lhs, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Defs[lhs]; obj != nil {
			return obj, true
		}
		if obj := info.Uses[lhs]; obj != nil {
			return obj, true
		}
	}
	return nil, false
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call somewhere after the range statement in the same function body — the
// canonical collect-then-sort pattern that restores determinism.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return !sorted
		}
		fn := callee(info, call)
		if fn == nil || isMethod(fn) {
			return !sorted
		}
		if isSortFunc(fn) && mentionsObject(info, call, obj) {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

// isSortFunc recognizes the sorting entry points of sort and slices.
func isSortFunc(fn *types.Func) bool {
	switch {
	case fromPkg(fn, "sort"):
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case fromPkg(fn, "slices"):
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
