package lint

import (
	"go/ast"

	"ken/internal/lint/driver"
)

// ErrWire protects the checked-wire-format invariant of docs/PROTOCOL.md:
// every internal/wire Encode/Decode error carries a corruption or
// validation signal the replicated-model protocol must react to, so
// silently discarding one (a bare call statement) is always a bug.
// Inside the cmd/ binaries it additionally flags discarded errors from the
// io, bufio and flag packages — dropped Flush/Write/Set errors are how
// truncated tables and half-applied flag values happen. An explicit
// `_ = call()` assignment is the documented opt-out for genuinely
// ignorable errors; everything else needs handling or a
// //lint:ignore errwire directive with a reason.
var ErrWire = &driver.Analyzer{
	Name: "errwire",
	Doc: "flags call statements that discard the error result of internal/wire " +
		"encode/decode anywhere, and of io/bufio/flag calls inside cmd/*; " +
		"assign to _ explicitly if the error is truly ignorable",
	Run: runErrWire,
}

func runErrWire(pass *driver.Pass) error {
	info := pass.Pkg.Info
	inCmd := pass.Pkg.ScopePath == "cmd" || hasPathPrefix(pass.Pkg.ScopePath, "cmd")
	pass.Inspect(func(n ast.Node) bool {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = ast.Unparen(stmt.X).(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		case *ast.GoStmt:
			call = stmt.Call
		}
		if call == nil {
			return true
		}
		fn := callee(info, call)
		if fn == nil || !returnsError(fn) {
			return true
		}
		switch {
		case fromPkg(fn, "internal/wire"):
			pass.Reportf(call.Pos(),
				"discarded error from wire.%s: wire errors signal frame corruption the "+
					"protocol must handle (docs/PROTOCOL.md); check it or assign to _ "+
					"explicitly", fn.Name())
		case inCmd && (fromPkg(fn, "io") || fromPkg(fn, "bufio") || fromPkg(fn, "flag")):
			pass.Reportf(call.Pos(),
				"discarded error from %s.%s in a command: dropped write/flush/flag errors "+
					"truncate output silently; check it or assign to _ explicitly",
				fn.Pkg().Name(), fn.Name())
		}
		return true
	})
	return nil
}

// hasPathPrefix reports whether path is under the given slash-separated
// prefix segment ("cmd" matches "cmd/kensim" but not "cmdx").
func hasPathPrefix(path, prefix string) bool {
	return len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/'
}
