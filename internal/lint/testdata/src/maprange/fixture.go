// Package maprange is a kenlint fixture for the map-iteration-order
// analyzer.
package maprange

import (
	"bytes"
	"fmt"
	"sort"
)

func appendsWithoutSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over map`
	}
	return out
}

// collectThenSort is the canonical fix: the order the elements arrived in
// no longer matters once they are sorted.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceAlsoCounts(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func printsRows(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over map`
	}
}

func emitsRows(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `WriteString call inside range over map`
	}
	return b.String()
}

func sendsInOrder(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// perIterationSlice is rebuilt from scratch each iteration and lands in a
// map: its internal order comes from the inner ordered loop, not from map
// iteration order.
func perIterationSlice(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, rows := range m {
		kept := make([]int, 0, len(rows))
		for i := 0; i < len(rows); i += 2 {
			kept = append(kept, rows[i])
		}
		out[k] = kept
	}
	return out
}

// commutative accumulation does not leak iteration order.
func sums(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// filling another map is order-independent too.
func inverts(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}
