// Package simnet is a kenlint fixture at the scope path internal/simnet:
// the network simulator's loss coins and ARQ backoff draws must come from
// the seeded per-network rng — motes have no wall clock, and replayed
// traces must be byte-identical — so the nondeterminism analyzer patrols
// it like the other deterministic packages.
package simnet

import (
	"math/rand"
	"time"
)

func backoffFromClock(attempt int) int {
	rng := rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock` `wall-clock time\.Now`
	return 1 + rng.Intn(1<<uint(attempt))
}

func backoffFromGlobal(attempt int) int {
	return 1 + rand.Intn(1<<uint(attempt)) // want `global rand\.Intn`
}

func retryTimeout() time.Duration {
	deadline := time.Now()      // want `wall-clock time\.Now`
	return time.Until(deadline) // want `wall-clock time\.Until`
}

// backoffSeeded is the approved pattern simnet.SendReliable uses: the
// slots come from the network's own deterministic generator.
func backoffSeeded(rng *rand.Rand, attempt int) int {
	return 1 + rng.Intn(1<<uint(attempt))
}
