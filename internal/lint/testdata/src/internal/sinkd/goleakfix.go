// Package sinkd (fixture) exercises goleak: every go statement needs a
// visible lifecycle — a context, WaitGroup, or done/stop channel tying the
// goroutine to the enclosing scope — or it cannot be joined on shutdown.
package sinkd

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (s *server) work() {}

func orphanWork() {}

func ctxWork(ctx context.Context) { <-ctx.Done() }

func spawn(s *server, ctx context.Context) {
	go orphanWork() // want "goroutine has no visible lifecycle"
	go s.work()     // receiver carries a WaitGroup field
	go ctxWork(ctx) // context argument

	go func() { // want "goroutine has no visible lifecycle"
		orphanWork()
	}()

	done := make(chan struct{})
	go func() { // done channel from the enclosing scope
		defer close(done)
		orphanWork()
	}()
	<-done

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // joined through the WaitGroup
		defer wg.Done()
		orphanWork()
	}()
	wg.Wait()

	//lint:ignore goleak fixture: fire-and-forget telemetry flush, process exit reaps it
	go orphanWork()
}
