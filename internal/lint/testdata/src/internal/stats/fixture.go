// Package stats is a kenlint fixture at scope path internal/stats, inside
// the floateq analyzer's numerical-kernel scope.
package stats

import "math"

func exactEquality(a, b float64) bool {
	return a == b // want `floating-point == compares for exact equality`
}

func exactInequality(a float32, b float64) bool {
	return float64(a) != b // want `floating-point != compares for exact equality`
}

func chained(a, b, c float64) bool {
	return a == b || b == c // want `floating-point ==` `floating-point ==`
}

// nanCheck uses the idiomatic self-comparison NaN test, which is exact on
// purpose and never flagged.
func nanCheck(v float64) bool {
	return v != v
}

//lint:comparator tolerance helper — the one place exact comparison lives
func eqTol(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func integersAreFine(a, b int) bool {
	return a == b
}

func sentinel(v float64) bool {
	//lint:ignore floateq zero is an exact sentinel here, not a computed value
	return v == 0
}
