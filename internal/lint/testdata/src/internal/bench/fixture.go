// Package bench is a kenlint fixture: it sits at the scope path
// internal/bench, one of the deterministic packages the nondeterminism
// analyzer patrols.
package bench

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock time\.Now`
	return time.Since(start) // want `wall-clock time\.Since`
}

func globalSource() float64 {
	rand.Seed(42)                            // want `global rand\.Seed`
	vals := rand.Perm(10)                    // want `global rand\.Perm`
	rand.Shuffle(10, func(int, int) {})      // want `global rand\.Shuffle`
	return rand.Float64() + float64(vals[0]) // want `global rand\.Float64`
}

func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock` `wall-clock time\.Now`
}

// configSeeded is the approved pattern: the seed arrives from
// configuration and the generator is local.
func configSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // methods on a local *rand.Rand are fine
}

func suppressed() time.Time {
	//lint:ignore nondeterminism fixture exercising the escape hatch
	return time.Now()
}
