// Package hotpath is the hotalloc fixture: each function exercises one
// allocating-construct class on an annotated hot function, plus the
// exemptions — capacity-evidenced appends, cold error branches, annotated
// (trusted) callees, and a reasoned suppression.
package hotpath

import "fmt"

type point struct{ x, y int }

type pair struct{ x, y float64 }

// allocs hits the explicit-allocation classes.
//
//ken:hotpath
func allocs(n int) {
	a := make([]float64, n) // want "make allocates"
	b := new(float64)       // want "new allocates"
	c := []int{1, 2, 3}     // want "slice literal allocates"
	m := map[string]int{}   // want "map literal allocates"
	p := &point{1, 2}       // want "&composite literal escapes to the heap"
	_, _, _, _, _ = a, b, c, m, p
}

// appendGrows has no capacity evidence for dst.
//
//ken:hotpath
func appendGrows(dst, xs []float64) []float64 {
	for _, x := range xs {
		dst = append(dst, x) // want "append without preallocated-capacity evidence"
	}
	return dst
}

// appendWithCap reuses dst's backing array: the [:0] reslice is the
// evidence.
//
//ken:hotpath
func appendWithCap(dst, xs []float64) []float64 {
	dst = dst[:0]
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// strAllocs hits the string classes.
//
//ken:hotpath
func strAllocs(a, b string, n int) string {
	s := a + b                        // want "string concatenation allocates"
	s += a                            // want `string \+= allocates`
	return fmt.Sprintf("%s-%d", s, n) // want `fmt\.Sprintf allocates`
}

func sink(v any) { _ = v }

// boxing hits conversions and implicit interface boxing.
//
//ken:hotpath
func boxing(p pair, bs []byte) {
	sink(p)        // want "implicit boxing of"
	sink(&p)       // pointers fit the interface word: no boxing
	_ = string(bs) // want "conversion copies and allocates"
	_ = any(p)     // want "conversion of .* into interface"
}

// closures: a capturing literal allocates its environment, a capture-free
// one is a static funcval.
//
//ken:hotpath
func closures(xs []float64) float64 {
	total := 0.0
	bump := func() { total++ } // want "closure captures"
	bump()
	double := func(x float64) float64 { return x * 2 }
	return double(total)
}

// coldPath allocates only on the error branch, which is exempt: failures
// happen once, not once per epoch.
//
//ken:hotpath
func coldPath(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty input (%d values)", len(xs))
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s, nil
}

// hotCaller calls an un-annotated same-package helper that allocates: the
// finding lands at the call site so the fix (or suppression) stays next to
// the hot loop.
//
//ken:hotpath
func hotCaller(xs []float64) []float64 {
	return helperAlloc(xs) // want `hot path calls helperAlloc, which allocates \(make at hotpath\.go:\d+\)`
}

func helperAlloc(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}

// hotTrusted calls an annotated callee: trusted here, checked at its own
// definition.
//
//ken:hotpath
func hotTrusted(xs []float64) float64 {
	return fastSum(xs)
}

// fastSum is allocation-free.
//
//ken:hotpath
func fastSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// reportEpoch demonstrates the escape hatch: report epochs allocate by
// design, the steady state never reaches this function.
//
//ken:hotpath
func reportEpoch(n int) []int {
	//lint:ignore hotalloc report epochs allocate by design; the suppressed-epoch fast path never reaches this
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
