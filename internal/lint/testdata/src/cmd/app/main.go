// Command app is a kenlint fixture: a cmd/-scoped package for the errwire
// analyzer, where io/bufio/flag error discards are flagged on top of the
// everywhere-scoped wire checks.
package main

import (
	"bufio"
	"flag"
	"io"
	"os"

	"ken/internal/wire"
)

func main() {
	frame := wire.Frame{Step: 1, Attrs: []int{0}, Values: []float64{1.5}}

	wire.Encode(frame, 0.1) // want `discarded error from wire\.Encode`

	buf, err := wire.Encode(frame, 0.1) // handled: fine
	if err != nil {
		return
	}
	wire.Decode(buf, 0.1)        // want `discarded error from wire\.Decode`
	_, _ = wire.Decode(buf, 0.1) // explicit blank: the documented opt-out

	w := bufio.NewWriter(os.Stdout)
	w.Flush()       // want `discarded error from bufio\.Flush`
	_ = w.Flush()   // explicit blank: fine
	defer w.Flush() // want `discarded error from bufio\.Flush`

	flag.Set("unknown", "1") // want `discarded error from flag\.Set`

	io.Copy(io.Discard, os.Stdin) // want `discarded error from io\.Copy`

	//lint:ignore errwire fixture exercising the escape hatch
	w.Flush()
}
