// Package obsuser is a kenlint fixture for the obshandle analyzer: an
// instrumented package outside internal/obs itself.
package obsuser

import "ken/internal/obs"

func lookupInLoop(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		reg.Counter("steps_total").Inc() // want `Registry\.Counter lookup inside a loop`
	}
	for range make(map[int]bool) {
		reg.Timer("cell_seconds").Observe(0) // want `Registry\.Timer lookup inside a loop`
	}
}

// resolveOnce is the approved pattern: handles resolved at construction,
// called unconditionally on the hot path.
func resolveOnce(reg *obs.Registry, n int) *obs.Counter {
	c := reg.Counter("ok_total")
	for i := 0; i < n; i++ {
		c.Inc()
	}
	return c
}

func nilGuards(c *obs.Counter, g *obs.Gauge, h *obs.Histogram, t *obs.Timer) {
	if c != nil { // want `nil check on \*obs\.Counter`
		c.Inc()
	}
	if g == nil { // want `nil check on \*obs\.Gauge`
		return
	}
	if h != nil { // want `nil check on \*obs\.Histogram`
		h.Observe(1)
	}
	if nil != t { // want `nil check on \*obs\.Timer`
		_ = t.Snapshot()
	}
}

// tracerGuard is sanctioned: trace emission sites nil-check the tracer to
// avoid building event payloads (docs/OBSERVABILITY.md).
func tracerGuard(tr *obs.Tracer) {
	if tr != nil {
		_ = tr
	}
}

// spanGuards: epoch spans are nil-safe too, but their liveness guard is
// Active() — a raw nil comparison misses the detached-tracer case.
func spanGuards(sp *obs.Span) {
	if sp != nil { // want `nil check on \*obs\.Span`
		sp.Emit(obs.Event{})
	}
	if nil == sp { // want `nil check on \*obs\.Span`
		return
	}
	if sp.Active() { // the sanctioned guard
		sp.Emit(obs.Event{})
	}
}

// scopedViewInLoop: WithScope/Scoped mint a view per call; building one
// per iteration is the trace-side analogue of a registry lookup in a loop.
func scopedViewInLoop(tr *obs.Tracer, ob *obs.Observer, n int) {
	for i := 0; i < n; i++ {
		_ = tr.WithScope("cell") // want `Tracer\.WithScope builds a scoped trace view inside a loop`
	}
	for range make([]int, n) {
		_ = ob.Scoped("cell") // want `Observer\.Scoped builds a scoped trace view inside a loop`
	}
	view := tr.WithScope("once") // approved: resolved outside the loop
	for i := 0; i < n; i++ {
		_ = view
	}
}
