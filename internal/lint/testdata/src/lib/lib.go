// Package lib is a kenlint fixture: a library (non-cmd) package where
// errwire flags wire discards but leaves io/bufio/flag discards alone.
package lib

import (
	"bufio"

	"ken/internal/wire"
)

func encode(f wire.Frame, w *bufio.Writer) {
	wire.Encode(f, 0.5) // want `discarded error from wire\.Encode`
	w.Flush()           // io/bufio discards are only flagged under cmd/
}
