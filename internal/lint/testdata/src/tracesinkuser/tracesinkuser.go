// Package tracesinkuser is a kenlint fixture for the tracesink analyzer:
// discarded errors from internal/tracestore calls are flagged in every
// scope — a dropped segment write or seal breaks the hash chain without
// any visible symptom until verification fails.
package tracesinkuser

import "ken/internal/tracestore"

func write(w *tracestore.Writer, line []byte) error {
	w.WriteEventLine("scope", 1, line) // want `discarded error from tracestore\.WriteEventLine`
	w.Flush()                          // want `discarded error from tracestore\.Flush`
	defer w.Seal()                     // want `discarded error from tracestore\.Seal`

	if err := w.WriteEventLine("scope", 2, line); err != nil { // handled: fine
		return err
	}
	_ = w.Flush() // explicit blank: the documented opt-out

	//lint:ignore tracesink fixture exercising the escape hatch
	w.Seal()
	return w.Close()
}

func create(dir string) {
	tracestore.Create(dir, tracestore.Options{}) // want `discarded error from tracestore\.Create`
}

func verify(dir string) {
	go tracestore.VerifyChain(dir) // want `discarded error from tracestore\.VerifyChain`
}
