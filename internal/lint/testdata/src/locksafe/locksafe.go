// Package locksafe is the locksafe fixture: blocking operations under a
// held mutex, returns that skip the Unlock, and the patterns the analyzer
// must accept (unlock-before-return branches, deliberate serialization
// behind a reasoned suppression).
package locksafe

import (
	"net"
	"os"
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

func (g *guarded) sendHeld() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while g\.mu is held`
	g.mu.Unlock()
}

func (g *guarded) recvHeldDeferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	<-g.ch // want `channel receive while g\.mu is held`
}

func (g *guarded) selectHeld(stop chan struct{}) {
	g.mu.Lock()
	select { // want `select while g\.mu is held`
	case <-stop:
	default:
	}
	g.mu.Unlock()
}

func (g *guarded) ioHeld(f *os.File, buf []byte) {
	g.mu.Lock()
	_, _ = f.Read(buf) // want `os\.Read \(network/file I/O\) called while g\.mu is held`
	g.mu.Unlock()
}

func (g *guarded) dialHeld() net.Conn {
	g.rw.RLock()
	c, _ := net.Dial("tcp", "localhost:0") // want `net\.Dial \(network/file I/O\) called while g\.rw is held`
	g.rw.RUnlock()
	return c
}

func (g *guarded) sleepHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while g\.mu is held`
}

func (g *guarded) leakyReturn(cond bool) int {
	g.mu.Lock()
	if cond {
		return g.n // want `return with g\.mu held`
	}
	g.mu.Unlock()
	return 0
}

// okReturn unlocks on every path: the branch unlocks before returning.
func (g *guarded) okReturn(cond bool) int {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		return g.n
	}
	n := g.n
	g.mu.Unlock()
	return n
}

func (g *guarded) neverUnlocks() {
	g.mu.Lock() // want `g\.mu\.Lock with no matching Unlock on this path`
	g.n++
}

// journal serializes file writes behind the lock on purpose — the escape
// hatch carries the reason.
func (g *guarded) journal(f *os.File, line []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	//lint:ignore locksafe fixture: the journal serializes writes behind the lock by design
	_, _ = f.Write(line)
}

// quickOps under the lock are fine: map/field access, sync calls.
func (g *guarded) quickOps() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return g.n
}
