// Package hotpathx is the cross-package hotalloc fixture: the annotated
// function calls into a sibling package whose body is only visible through
// the driver's Program index. TestHotAllocCrossPackage loads both packages
// through one loader and asserts the call-site diagnostic.
package hotpathx

import "ken/internal/lint/testdata/src/hotpathx/dep"

// HotCross is the serving loop; dep.Scale allocates a copy per call.
//
//ken:hotpath
func HotCross(xs []float64) []float64 {
	return dep.Scale(xs)
}
