// Package dep is the un-annotated callee package of the hotpathx fixture.
package dep

// Scale returns a scaled copy — allocating, and not annotated //ken:hotpath.
func Scale(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 2 * x
	}
	return out
}
