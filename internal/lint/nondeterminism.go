package lint

import (
	"go/ast"
	"go/types"

	"ken/internal/lint/driver"
)

// Nondeterminism enforces the seeding discipline of docs/ENGINE.md §
// "Determinism and seeding discipline" inside the packages whose results
// must be byte-identical across worker counts: all randomness flows from
// configuration seeds (engine.CellSeed derivations) and never from the
// wall clock or the process-global math/rand source, whose consumption
// order depends on scheduling.
var Nondeterminism = &driver.Analyzer{
	Name: "nondeterminism",
	Doc: "flags wall-clock reads (time.Now/Since/Until), process-global math/rand " +
		"draws, and RNGs seeded from the clock inside the deterministic packages " +
		"(internal/bench, internal/engine, internal/trace, internal/mc, internal/simnet); " +
		"seed a local rand.New(rand.NewSource(engine.CellSeed(base, labels...))) instead",
	Scope: driver.ScopeIn("internal/bench", "internal/engine", "internal/trace", "internal/mc",
		"internal/simnet"),
	Run: runNondeterminism,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared global source. rand.New,
// rand.NewSource and rand.NewZipf are absent on purpose: constructing a
// locally seeded generator is exactly the approved pattern.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func runNondeterminism(pass *driver.Pass) error {
	info := pass.Pkg.Info
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(info, call)
		if fn == nil {
			return true
		}
		name := fn.Name()
		switch {
		case fromPkg(fn, "time") && (name == "Now" || name == "Since" || name == "Until"):
			pass.Reportf(call.Pos(),
				"wall-clock time.%s in a deterministic package; results must not depend on "+
					"real time — derive timing from step counters, or route instrumentation "+
					"through an obs.Timer", name)
		case isRandPkg(fn) && !isMethod(fn) && globalRandFuncs[name]:
			pass.Reportf(call.Pos(),
				"global rand.%s draws from the process-wide source, whose consumption order "+
					"depends on goroutine scheduling; use a local rand.New(rand.NewSource("+
					"engine.CellSeed(base, labels...)))", name)
		case isRandPkg(fn) && !isMethod(fn) && name == "NewSource" && seededFromClock(info, call):
			pass.Reportf(call.Pos(),
				"RNG seeded from the wall clock; seeds must come from configuration via "+
					"engine.CellSeed so runs are reproducible")
		}
		return true
	})
	return nil
}

func isRandPkg(fn *types.Func) bool {
	return fromPkg(fn, "math/rand") || fromPkg(fn, "math/rand/v2")
}

// seededFromClock reports whether the call's arguments contain a time.Now
// call anywhere in their subtree — the rand.NewSource(time.Now().UnixNano())
// idiom.
func seededFromClock(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		clock := false
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := callee(info, inner); fn != nil && fromPkg(fn, "time") && fn.Name() == "Now" {
				clock = true
			}
			return !clock
		})
		if clock {
			return true
		}
	}
	return false
}
