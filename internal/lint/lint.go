// Package lint is kenlint's analyzer suite: custom static checks that turn
// the determinism, seeding and protocol invariants documented in
// docs/ENGINE.md, docs/PROTOCOL.md and docs/OBSERVABILITY.md from prose
// into mechanically enforced rules. The analyzers run on the stdlib-only
// go/analysis work-alike in internal/lint/driver; cmd/kenlint is the
// multichecker binary and "make lint" the gate. docs/LINT.md catalogues
// every analyzer, the invariant behind it, and the
// "//lint:ignore <analyzer> <reason>" escape hatch.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"ken/internal/lint/driver"
)

// Analyzers returns the full kenlint suite in stable order.
func Analyzers() []*driver.Analyzer {
	return []*driver.Analyzer{
		Nondeterminism,
		MapRange,
		ErrWire,
		FloatEq,
		ObsHandle,
		TraceSink,
		HotAlloc,
		GoLeak,
		LockSafe,
	}
}

// callee resolves the *types.Func a call invokes (package function or
// method), or nil for builtins, conversions, and indirect calls through
// function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the import path of the package a function belongs
// to ("" for builtins and universe-scope functions like error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMethod reports whether fn has a receiver.
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// fromPkg reports whether fn lives in the package with the given
// module-relative import path: an exact match ("time"), or a module
// internal path matched by suffix so "internal/obs" covers
// "ken/internal/obs" wherever the module is checked out.
func fromPkg(fn *types.Func, path string) bool {
	p := funcPkgPath(fn)
	return p == path || strings.HasSuffix(p, "/"+path)
}

// returnsError reports whether the last result of fn is the builtin error
// type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// mentionsObject reports whether any identifier under n resolves to obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
