package lint_test

import (
	"path/filepath"
	"testing"

	"ken/internal/lint"
	"ken/internal/lint/driver"
)

// fixture resolves a testdata package directory.
func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestNondeterminism(t *testing.T) {
	driver.AnalysisTest(t, lint.Nondeterminism, fixture("internal", "bench"))
}

func TestNondeterminismSimnet(t *testing.T) {
	driver.AnalysisTest(t, lint.Nondeterminism, fixture("internal", "simnet"))
}

func TestMapRange(t *testing.T) {
	driver.AnalysisTest(t, lint.MapRange, fixture("maprange"))
}

func TestErrWireInCmd(t *testing.T) {
	driver.AnalysisTest(t, lint.ErrWire, fixture("cmd", "app"))
}

func TestErrWireInLibrary(t *testing.T) {
	driver.AnalysisTest(t, lint.ErrWire, fixture("lib"))
}

func TestFloatEq(t *testing.T) {
	driver.AnalysisTest(t, lint.FloatEq, fixture("internal", "stats"))
}

func TestObsHandle(t *testing.T) {
	driver.AnalysisTest(t, lint.ObsHandle, fixture("obsuser"))
}

func TestTraceSink(t *testing.T) {
	driver.AnalysisTest(t, lint.TraceSink, fixture("tracesinkuser"))
}

// TestSuiteShape pins the acceptance-criteria contract: the suite ships at
// least five analyzers, each named, documented, and with a Run function.
func TestSuiteShape(t *testing.T) {
	as := lint.Analyzers()
	if len(as) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"nondeterminism", "maprange", "errwire", "floateq", "obshandle", "tracesink"} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

// TestScopes pins each analyzer to the packages its invariant lives in, so
// a scope regression cannot silently stop a deterministic package from
// being patrolled.
func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer  *driver.Analyzer
		scopePath string
		want      bool
	}{
		{lint.Nondeterminism, "internal/bench", true},
		{lint.Nondeterminism, "internal/engine", true},
		{lint.Nondeterminism, "internal/trace", true},
		{lint.Nondeterminism, "internal/mc", true},
		{lint.Nondeterminism, "internal/simnet", true},
		{lint.Nondeterminism, "internal/core", false},
		{lint.Nondeterminism, "cmd/kenbench", false},
		{lint.FloatEq, "internal/stats", true},
		{lint.FloatEq, "internal/gauss", true},
		{lint.FloatEq, "internal/mat", true},
		{lint.FloatEq, "internal/model", false},
		{lint.ObsHandle, "internal/obs", false},
		{lint.ObsHandle, "internal/core", true},
	}
	for _, c := range cases {
		if got := c.analyzer.Scope(c.scopePath); got != c.want {
			t.Errorf("%s.Scope(%q) = %v, want %v", c.analyzer.Name, c.scopePath, got, c.want)
		}
	}
	if lint.MapRange.Scope != nil {
		t.Errorf("maprange should run everywhere (nil scope)")
	}
	if lint.ErrWire.Scope != nil {
		t.Errorf("errwire should run everywhere (nil scope)")
	}
}
