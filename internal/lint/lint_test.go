package lint_test

import (
	"path/filepath"
	"regexp"
	"testing"

	"ken/internal/lint"
	"ken/internal/lint/driver"
)

// fixture resolves a testdata package directory.
func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}

func TestNondeterminism(t *testing.T) {
	driver.AnalysisTest(t, lint.Nondeterminism, fixture("internal", "bench"))
}

func TestNondeterminismSimnet(t *testing.T) {
	driver.AnalysisTest(t, lint.Nondeterminism, fixture("internal", "simnet"))
}

func TestMapRange(t *testing.T) {
	driver.AnalysisTest(t, lint.MapRange, fixture("maprange"))
}

func TestErrWireInCmd(t *testing.T) {
	driver.AnalysisTest(t, lint.ErrWire, fixture("cmd", "app"))
}

func TestErrWireInLibrary(t *testing.T) {
	driver.AnalysisTest(t, lint.ErrWire, fixture("lib"))
}

func TestFloatEq(t *testing.T) {
	driver.AnalysisTest(t, lint.FloatEq, fixture("internal", "stats"))
}

func TestObsHandle(t *testing.T) {
	driver.AnalysisTest(t, lint.ObsHandle, fixture("obsuser"))
}

func TestTraceSink(t *testing.T) {
	driver.AnalysisTest(t, lint.TraceSink, fixture("tracesinkuser"))
}

func TestHotAlloc(t *testing.T) {
	driver.AnalysisTest(t, lint.HotAlloc, fixture("hotpath"))
}

// TestHotAllocCrossPackage drives the transitive-callee rule across a
// package boundary: the annotated caller and the allocating callee live in
// different packages, resolved through the driver's Program index.
// AnalysisTest loads a single package, so this test assembles the
// two-package run by hand.
func TestHotAllocCrossPackage(t *testing.T) {
	l, err := driver.NewLoader(fixture("hotpathx"))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	main, err := l.LoadDir(fixture("hotpathx"))
	if err != nil {
		t.Fatalf("loading caller fixture: %v", err)
	}
	dep, err := l.LoadDir(fixture("hotpathx", "dep"))
	if err != nil {
		t.Fatalf("loading callee fixture: %v", err)
	}
	diags, err := driver.Run([]*driver.Analyzer{lint.HotAlloc}, []*driver.Package{main, dep})
	if err != nil {
		t.Fatalf("running hotalloc: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	want := regexp.MustCompile(`hot path calls Scale, which allocates \(make at dep\.go:\d+\)`)
	if !want.MatchString(diags[0].Message) {
		t.Errorf("diagnostic %q does not match %q", diags[0].Message, want)
	}
	if base := filepath.Base(diags[0].Pos.Filename); base != "hotpathx.go" {
		t.Errorf("diagnostic reported in %s, want the caller's file hotpathx.go", base)
	}
}

func TestGoLeak(t *testing.T) {
	driver.AnalysisTest(t, lint.GoLeak, fixture("internal", "sinkd"))
}

func TestLockSafe(t *testing.T) {
	driver.AnalysisTest(t, lint.LockSafe, fixture("locksafe"))
}

// TestSuiteShape pins the acceptance-criteria contract: the suite ships at
// least five analyzers, each named, documented, and with a Run function.
func TestSuiteShape(t *testing.T) {
	as := lint.Analyzers()
	if len(as) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"nondeterminism", "maprange", "errwire", "floateq", "obshandle", "tracesink",
		"hotalloc", "goleak", "locksafe"} {
		if !seen[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
}

// TestScopes pins each analyzer to the packages its invariant lives in, so
// a scope regression cannot silently stop a deterministic package from
// being patrolled.
func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer  *driver.Analyzer
		scopePath string
		want      bool
	}{
		{lint.Nondeterminism, "internal/bench", true},
		{lint.Nondeterminism, "internal/engine", true},
		{lint.Nondeterminism, "internal/trace", true},
		{lint.Nondeterminism, "internal/mc", true},
		{lint.Nondeterminism, "internal/simnet", true},
		{lint.Nondeterminism, "internal/core", false},
		{lint.Nondeterminism, "cmd/kenbench", false},
		{lint.FloatEq, "internal/stats", true},
		{lint.FloatEq, "internal/gauss", true},
		{lint.FloatEq, "internal/mat", true},
		{lint.FloatEq, "internal/model", false},
		{lint.ObsHandle, "internal/obs", false},
		{lint.ObsHandle, "internal/core", true},
		{lint.GoLeak, "internal/sinkd", true},
		{lint.GoLeak, "internal/engine", true},
		{lint.GoLeak, "internal/simnet", true},
		{lint.GoLeak, "internal/obs", true},
		{lint.GoLeak, "internal/slo", true},
		{lint.GoLeak, "internal/core", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Scope(c.scopePath); got != c.want {
			t.Errorf("%s.Scope(%q) = %v, want %v", c.analyzer.Name, c.scopePath, got, c.want)
		}
	}
	if lint.MapRange.Scope != nil {
		t.Errorf("maprange should run everywhere (nil scope)")
	}
	if lint.ErrWire.Scope != nil {
		t.Errorf("errwire should run everywhere (nil scope)")
	}
	if lint.HotAlloc.Scope != nil {
		t.Errorf("hotalloc should run everywhere (nil scope): the //ken:hotpath annotation gates it")
	}
	if lint.LockSafe.Scope != nil {
		t.Errorf("locksafe should run everywhere (nil scope)")
	}
}
