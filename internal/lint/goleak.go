package lint

import (
	"go/ast"
	"go/types"

	"ken/internal/lint/driver"
)

// GoLeak patrols the packages that own long-lived goroutines: every go
// statement must show, at the spawn site, how the goroutine is joined or
// stopped. A goroutine with no context, WaitGroup, or done/stop channel
// tying it to the enclosing scope cannot be waited for on shutdown — it is
// an unjoinable leak (the class of bug docs/LINT.md's goleak section
// catalogues, and the sinkd shutdown-under-load test exercises).
var GoLeak = &driver.Analyzer{
	Name: "goleak",
	Doc: "every go statement in internal/sinkd, internal/engine, internal/simnet, " +
		"internal/obs and internal/slo must have a visible lifecycle: the goroutine body or callee " +
		"receives a context.Context, *sync.WaitGroup, or a done/stop channel from the " +
		"enclosing scope (a method receiver carrying one of those in a field also " +
		"counts); otherwise shutdown cannot join it",
	Scope: driver.ScopeIn("internal/sinkd", "internal/engine", "internal/simnet", "internal/obs", "internal/slo"),
	Run:   runGoLeak,
}

func runGoLeak(pass *driver.Pass) error {
	info := pass.Pkg.Info
	pass.Inspect(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !hasLifecycle(info, g.Call) {
			pass.Reportf(g.Pos(),
				"goroutine has no visible lifecycle: no context.Context, *sync.WaitGroup, or "+
					"done/stop channel ties it to the enclosing scope, so shutdown cannot join it")
		}
		return true
	})
	return nil
}

// hasLifecycle reports whether the spawned call is visibly joinable: a
// lifecycle-typed argument, a function-literal body that mentions a
// lifecycle-typed variable (captured channel, WaitGroup, context — or one
// reached through a field), or a method whose receiver type carries a
// lifecycle field.
func hasLifecycle(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if isLifecycleType(info.TypeOf(a)) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		found := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if v, ok := obj.(*types.Var); ok && isLifecycleType(v.Type()) {
				found = true
			}
			return !found
		})
		return found
	case *ast.SelectorExpr:
		if recv := info.TypeOf(fun.X); typeCarriesLifecycle(recv) {
			return true
		}
	}
	return false
}

// isLifecycleType reports whether t is a joinability witness: any channel,
// context.Context, or sync.WaitGroup (by value or pointer).
func isLifecycleType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch path, name := named.Obj().Pkg().Path(), named.Obj().Name(); {
	case path == "context" && name == "Context":
		return true
	case path == "sync" && name == "WaitGroup":
		return true
	}
	return false
}

// typeCarriesLifecycle reports whether t (after deref) is a struct with a
// direct lifecycle-typed field — the "go d.handleConn(conn)" shape, where
// the daemon's own WaitGroup is the join point.
func typeCarriesLifecycle(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isLifecycleType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
