package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ken/internal/lint/driver"
)

// FloatEq enforces the numerical-comparison discipline in the math
// kernels (internal/stats, internal/gauss, internal/mat): `==` and `!=`
// on floating-point values silently encode an exactness assumption that
// breaks under reordered summation, fused multiply-add, or a refactored
// solve path — exactly the kind of drift the ε-guarantee audit exists to
// catch. Comparisons belong in tolerance helpers. Two escapes exist: a
// function whose doc comment carries a "//lint:comparator" directive is an
// approved comparator and may compare exactly inside, and the NaN
// self-test `v != v` is idiomatic and never flagged.
var FloatEq = &driver.Analyzer{
	Name: "floateq",
	Doc: "flags == and != on float operands in internal/stats, internal/gauss and " +
		"internal/mat outside //lint:comparator-approved helper functions; compare " +
		"against a tolerance, or mark intentional exact sentinel checks with " +
		"//lint:ignore floateq <reason>",
	Scope: driver.ScopeIn("internal/stats", "internal/gauss", "internal/mat"),
	Run:   runFloatEq,
}

func runFloatEq(pass *driver.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if decl, ok := n.(*ast.FuncDecl); ok && isComparatorFunc(decl) {
				return false
			}
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(info.TypeOf(bin.X)) && !isFloat(info.TypeOf(bin.Y)) {
				return true
			}
			// `v != v` is the idiomatic NaN check; leave it alone.
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(),
				"floating-point %s compares for exact equality; use a tolerance "+
					"comparison (or a //lint:comparator helper), or justify the exact "+
					"check with //lint:ignore floateq <reason>", bin.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isComparatorFunc reports whether the function is marked as an approved
// comparator via a //lint:comparator doc-comment directive.
func isComparatorFunc(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, "//lint:comparator") {
			return true
		}
	}
	return false
}
