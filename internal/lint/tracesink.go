package lint

import (
	"go/ast"

	"ken/internal/lint/driver"
)

// TraceSink protects the tamper-evidence contract of the segmented trace
// store (docs/OBSERVABILITY.md, "Trace store"): every error returned by
// an internal/tracestore writer or reader call signals a segment, index
// or seal that did not reach disk intact — discarding one leaves a store
// that looks healthy but cannot verify, which is the one failure mode a
// tamper-evident log must never have. An explicit `_ = call()` assignment
// is the documented opt-out; everything else needs handling or a
// //lint:ignore tracesink directive with a reason.
var TraceSink = &driver.Analyzer{
	Name: "tracesink",
	Doc: "flags call statements that discard the error result of " +
		"internal/tracestore calls: a dropped segment/index write or seal " +
		"error silently breaks the hash chain's auditability; assign to _ " +
		"explicitly if the error is truly ignorable",
	Run: runTraceSink,
}

func runTraceSink(pass *driver.Pass) error {
	info := pass.Pkg.Info
	pass.Inspect(func(n ast.Node) bool {
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = ast.Unparen(stmt.X).(*ast.CallExpr)
		case *ast.DeferStmt:
			call = stmt.Call
		case *ast.GoStmt:
			call = stmt.Call
		}
		if call == nil {
			return true
		}
		fn := callee(info, call)
		if fn == nil || !returnsError(fn) || !fromPkg(fn, "internal/tracestore") {
			return true
		}
		pass.Reportf(call.Pos(),
			"discarded error from tracestore.%s: a lost segment/index write or seal "+
				"breaks the hash chain silently (docs/OBSERVABILITY.md); check it or "+
				"assign to _ explicitly", fn.Name())
		return true
	})
	return nil
}
