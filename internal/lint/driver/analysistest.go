package driver

import (
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe introduces an expectation comment: `// want "re"` or
// `// want `+"`re`"+` — with several quoted or backquoted regexps allowed
// after one want, mirroring x/tools analysistest.
var wantRe = regexp.MustCompile(`//\s*want\s+(.+)`)

// parseWantPatterns tokenizes the tail of a want comment into its regexp
// sources.
func parseWantPatterns(tail string) []string {
	var out []string
	for {
		tail = strings.TrimSpace(tail)
		if len(tail) == 0 {
			return out
		}
		switch tail[0] {
		case '`':
			end := strings.IndexByte(tail[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, tail[1:1+end])
			tail = tail[end+2:]
		case '"':
			// Only \" is an escape; other backslashes pass through so
			// regexp escapes like \. survive.
			var buf strings.Builder
			i := 1
			for ; i < len(tail) && tail[i] != '"'; i++ {
				if tail[i] == '\\' && i+1 < len(tail) && tail[i+1] == '"' {
					i++
				}
				buf.WriteByte(tail[i])
			}
			if i == len(tail) {
				return out
			}
			out = append(out, buf.String())
			tail = tail[i+1:]
		default:
			return out
		}
	}
}

// AnalysisTest loads the fixture package rooted at dir (conventionally
// internal/lint/testdata/src/<path>), runs the analyzer over it and
// compares the diagnostics against the `// want "re"` comments in the
// fixture sources: every want must be matched by a diagnostic on its line,
// and every diagnostic must have a want. Scope is honoured — fixtures sit
// under testdata/src/<scope-path> so the package scopes exactly like the
// real tree.
func AnalysisTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if a.Scope != nil && !a.Scope(pkg.ScopePath) {
		t.Fatalf("fixture %s (scope path %q) is outside analyzer %s's scope", dir, pkg.ScopePath, a.Name)
	}
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				exprs := parseWantPatterns(m[1])
				if len(exprs) == 0 {
					t.Fatalf("%s: want comment with no pattern: %s", pos, c.Text)
				}
				for _, expr := range exprs {
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[key][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, ok := range matched[k] {
			if !ok {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, wants[k][i])
			}
		}
	}
}
