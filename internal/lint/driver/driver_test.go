package driver

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway single-package module and returns the
// package directory.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixturemod\n\ngo 1.22\n"
	for name, src := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderTypeChecksAcrossPackages(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go":      "package a\n\nimport \"fixturemod/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go":      "package b\n\nimport \"strings\"\n\nfunc B() int { return strings.Count(\"aa\", \"a\") }\n",
		"b/b_test.go": "package b\n\nfunc testOnly() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "fixturemod/a" || pkgs[1].Path != "fixturemod/b" {
		t.Fatalf("paths = %q, %q", pkgs[0].Path, pkgs[1].Path)
	}
	if pkgs[0].ScopePath != "a" {
		t.Fatalf("scope path = %q, want %q", pkgs[0].ScopePath, "a")
	}
	// Test files are excluded by default.
	for _, f := range pkgs[1].Files {
		if pos := pkgs[1].Fset.Position(f.Pos()); filepath.Base(pos.Filename) == "b_test.go" {
			t.Fatalf("test file loaded without Tests=true")
		}
	}
}

func TestLoaderIncludesTestFilesWhenAsked(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go":      "package p\n\nfunc P() {}\n",
		"p/p_test.go": "package p\n\nfunc helper() { P() }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Tests = true
	pkg, err := l.LoadDir(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2", len(pkg.Files))
	}
}

func TestScopePath(t *testing.T) {
	cases := []struct{ path, module, want string }{
		{"ken/internal/bench", "ken", "internal/bench"},
		{"ken", "ken", "."},
		{"ken/internal/lint/testdata/src/internal/bench", "ken", "internal/bench"},
		{"ken/internal/lint/testdata/src/cmd/app", "ken", "cmd/app"},
	}
	for _, c := range cases {
		if got := scopePath(c.path, c.module); got != c.want {
			t.Errorf("scopePath(%q, %q) = %q, want %q", c.path, c.module, got, c.want)
		}
	}
}

func TestScopeHelpers(t *testing.T) {
	in := ScopeIn("internal/bench", "cmd")
	for path, want := range map[string]bool{
		"internal/bench":     true,
		"internal/bench/sub": true,
		"internal/benchmark": false,
		"cmd/kensim":         true,
		"internal/core":      false,
	} {
		if in(path) != want {
			t.Errorf("ScopeIn(%q) = %v, want %v", path, in(path), want)
		}
	}
	not := ScopeNot("internal/obs")
	if not("internal/obs") || !not("internal/core") {
		t.Errorf("ScopeNot misbehaves")
	}
}

// TestIgnoreDirective checks the //lint:ignore escape hatch: same line and
// next line are suppressed, other analyzers and other lines are not.
func TestIgnoreDirective(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go": `package p

func f() int { return 1 } //lint:ignore testcheck same-line reason

//lint:ignore testcheck next-line reason
func g() int { return 2 }

//lint:ignore othercheck wrong analyzer
func h() int { return 3 }

func k() int { return 4 }
`,
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	// testcheck flags every function declaration.
	a := &Analyzer{
		Name: "testcheck",
		Doc:  "flags every function",
		Run: func(pass *Pass) error {
			pass.Inspect(func(n ast.Node) bool {
				if d, ok := n.(*ast.FuncDecl); ok {
					pass.Reportf(d.Pos(), "func %s", d.Name.Name)
				}
				return true
			})
			return nil
		},
	}
	diags, err := Run([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"func h", "func k"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostics = %v, want %v", got, want)
		}
	}
}

func TestWantParser(t *testing.T) {
	got := parseWantPatterns("`a\\.b` \"c \\\"d\\\"\" `e`")
	want := []string{`a\.b`, `c "d"`, "e"}
	if len(got) != len(want) {
		t.Fatalf("parseWantPatterns = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseWantPatterns = %q, want %q", got, want)
		}
	}
}
