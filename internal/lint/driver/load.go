package driver

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the full import path ("ken/internal/bench").
	Path string
	// ScopePath is the path analyzers match scopes against: Path with the
	// module prefix stripped, and — for analyzer fixtures — everything up
	// to and including "testdata/src/" stripped, so a fixture checked out
	// at internal/lint/testdata/src/internal/bench scopes exactly like the
	// real internal/bench.
	ScopePath string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Loader loads and type-checks packages of the enclosing module from
// source. Module-internal imports are resolved against the module root;
// standard-library imports go through go/importer's source importer, so the
// whole thing needs nothing beyond the Go toolchain's own GOROOT — no
// export data, no network, no golang.org/x/tools.
type Loader struct {
	// Tests includes in-package _test.go files of the target packages
	// (external foo_test packages are not loaded).
	Tests bool

	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // by directory
	loading    map[string]bool     // import cycle detection, by directory
}

// NewLoader locates the enclosing module starting from dir (walking up to
// the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: path,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleRoot returns the directory holding go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// findModule walks up from dir to the nearest go.mod and parses the module
// path out of it.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("driver: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("driver: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load expands the given patterns ("./...", "./cmd/...", plain directories)
// relative to the module root and returns the matched packages in
// deterministic (path) order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "." || base == "" {
			base = l.moduleRoot
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.moduleRoot, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var out []*Package
	for _, d := range dirs {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads the single package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := l.loadDir(abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("driver: no Go files in %s", dir)
	}
	return pkg, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir (memoized). A dir whose
// eligible file list is empty (for example a directory holding only
// external test files) returns (nil, nil).
func (l *Loader) loadDir(dir string) (*Package, error) {
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("driver: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") && !l.Tests {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)

	var files []*ast.File
	var pkgName string
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		name := f.Name.Name
		// External test packages (package foo_test) type-check against an
		// already-checked foo; they are out of scope for this driver.
		if strings.HasSuffix(name, "_test") && strings.HasSuffix(n, "_test.go") {
			continue
		}
		// Files excluded by a //go:build constraint (e.g. the race-tagged
		// half of a constant pair) would redeclare symbols if both halves
		// type-checked together; keep only the default-context half.
		if !buildConstraintSatisfied(f) {
			continue
		}
		if pkgName == "" {
			pkgName = name
		}
		if name != pkgName {
			return nil, fmt.Errorf("driver: %s: mixed packages %s and %s", dir, pkgName, name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[dir] = nil
		return nil, nil
	}

	path := l.importPathFor(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:      path,
		ScopePath: scopePath(path, l.modulePath),
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
	}
	l.pkgs[dir] = pkg
	return pkg, nil
}

// importPathFor synthesizes the import path of a directory inside the
// module.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// buildConstraintSatisfied reports whether the file's //go:build
// constraint (if any) holds in the default build context. Only the host
// GOOS/GOARCH, the gc compiler and release tags satisfy; custom tags like
// "race" or "integration" do not, so of a tag-split constant pair exactly
// the default half is loaded.
func buildConstraintSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true
			}
			return expr.Eval(defaultBuildTag)
		}
	}
	return true
}

func defaultBuildTag(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		strings.HasPrefix(tag, "go1")
}

// scopePath derives the path analyzers scope against.
func scopePath(path, modulePath string) string {
	p := strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")
	if p == "" {
		p = "."
	}
	if _, rest, ok := strings.Cut(p, "testdata/src/"); ok {
		p = rest
	}
	return p
}

// loaderImporter resolves imports during type-checking: module-internal
// paths from source inside the module, everything else through the
// standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		// Dependencies reached through an import are loaded without their
		// _test.go files — test files are not part of a package's
		// importable API. Memoization is by directory, first load wins.
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		saved := l.Tests
		l.Tests = false
		pkg, err := l.loadDir(dir)
		l.Tests = saved
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("driver: no Go files for import %q", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
