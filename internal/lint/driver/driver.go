// Package driver is a deliberately small, stdlib-only re-creation of the
// golang.org/x/tools go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// plus the package loader and fixture test harness the kenlint suite runs
// on. The repository keeps zero external dependencies, so instead of
// importing x/tools this package rebuilds the ~10% of it the suite needs
// on top of go/parser, go/ast, go/types and go/importer. See docs/LINT.md
// for the trade-off.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" directives.
	Name string
	// Doc is the one-paragraph description printed by "kenlint -help".
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages whose
	// scope path (module-relative import path) it accepts. A nil Scope
	// runs everywhere.
	Scope func(scopePath string) bool
	// Run reports diagnostics for one package through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package through one analyzer, mirroring
// go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Program indexes every package of the current Run by full import
	// path, so analyzers that need to look across package boundaries
	// (hotalloc's direct-callee inspection) can find a function's
	// defining file. Packages outside the Run (stdlib, unanalyzed
	// module subtrees) are absent — analyzers must treat a miss as
	// "body not available".
	Program map[string]*Package

	diags []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line and analyzer. Diagnostics suppressed by
// an inline "//lint:ignore" directive are dropped here, after the
// analyzers ran.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	program := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		program[pkg.Path] = pkg
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := ignoreIndex(pkg)
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.ScopePath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Program: program}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !ignores.suppresses(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreEntry is one parsed "//lint:ignore <analyzer> <reason>" directive.
// It suppresses matching diagnostics on its own line and on the first
// following line — i.e. it can sit at the end of the offending line or on
// the line directly above it.
type ignoreEntry struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet []ignoreEntry

// ignoreIndex collects the ignore directives of a package. A directive
// with a missing reason is deliberately still honoured — kenlint's own
// style check for reasons lives in the fixture docs, not here — but the
// analyzer name must match exactly ("*" matches any analyzer).
func ignoreIndex(pkg *Package) ignoreSet {
	var set ignoreSet
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				set = append(set, ignoreEntry{file: pos.Filename, line: pos.Line, analyzer: fields[0]})
			}
		}
	}
	return set
}

func (s ignoreSet) suppresses(d Diagnostic) bool {
	for _, e := range s {
		if e.file != d.Pos.Filename {
			continue
		}
		if e.analyzer != d.Analyzer && e.analyzer != "*" {
			continue
		}
		if d.Pos.Line == e.line || d.Pos.Line == e.line+1 {
			return true
		}
	}
	return false
}

// ScopeIn builds a Scope function matching any of the given
// module-relative path prefixes: "internal/bench" matches the package
// itself and everything below it, "cmd" matches every command.
func ScopeIn(prefixes ...string) func(string) bool {
	return func(path string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
}

// ScopeNot inverts ScopeIn: the analyzer runs everywhere except the given
// subtrees.
func ScopeNot(prefixes ...string) func(string) bool {
	in := ScopeIn(prefixes...)
	return func(path string) bool { return !in(path) }
}

// Inspect walks every file of the pass's package in source order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
