package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"ken/internal/lint/driver"
)

// hotpathDirective marks a function as part of the serving hot path: the
// per-epoch conditioning loop and the daemon's frame-apply path, where the
// steady state must not touch the allocator (ROADMAP open item "zero-alloc
// epoch loop"). The directive sits in the function's doc comment.
const hotpathDirective = "//ken:hotpath"

// HotAlloc enforces the zero-alloc discipline on functions annotated
// //ken:hotpath. docs/LINT.md describes the construct classes, the
// error-path exemption, and the alloc-budget tests that back the analyzer
// up at runtime (TestAllocBudget*).
var HotAlloc = &driver.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //ken:hotpath (and the module functions they directly call) " +
		"may not contain heap-allocating constructs: make/new, slice/map/&composite " +
		"literals, append without preallocated-capacity evidence (3-arg make or x[:0] " +
		"reslice), string concatenation or string<->[]byte conversion, fmt calls, " +
		"closures capturing variables, or implicit boxing into interfaces. Branches " +
		"that end by returning a non-nil error (or panicking) are exempt: error paths " +
		"are cold. Escape with //lint:ignore hotalloc <reason>",
	Run: runHotAlloc,
}

func runHotAlloc(pass *driver.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// isHotpath reports whether the declaration's doc comment carries the
// //ken:hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// checkHotFunc reports every allocating construct in fd's body, then
// inspects each direct module callee one level deep: an un-annotated
// callee that allocates is reported at the call site (so the suppression,
// if any, stays next to the hot loop), while an annotated callee is
// trusted — it is checked where it is defined.
func checkHotFunc(pass *driver.Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	cold := coldRanges(pkg.Info, fd)
	for _, f := range allocFindings(pkg, fd, cold) {
		pass.Reportf(f.pos, "%s in a //ken:hotpath function", f.msg)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // the literal itself is handled by allocFindings
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cold.contains(call.Pos()) {
			return true
		}
		fn := callee(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		dep, ok := pass.Program[fn.Pkg().Path()]
		if !ok {
			return true // body not loaded (stdlib, outside the run)
		}
		decl := findFuncDecl(dep, fn)
		if decl == nil || decl.Body == nil || isHotpath(decl) {
			return true // interface method, or annotated and checked at its definition
		}
		sub := allocFindings(dep, decl, coldRanges(dep.Info, decl))
		if len(sub) > 0 {
			p := dep.Fset.Position(sub[0].pos)
			pass.Reportf(call.Pos(),
				"hot path calls %s, which allocates (%s at %s:%d); annotate it //ken:hotpath and fix it, or keep this call off the steady-state path",
				fn.Name(), sub[0].what, filepath.Base(p.Filename), p.Line)
		}
		return true
	})
}

// findFuncDecl locates the declaration of fn inside dep. The loader
// memoizes packages, so the *types.Func seen through a caller's Uses map
// is the same object the defining package recorded in Defs.
func findFuncDecl(dep *driver.Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range dep.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && dep.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// posRanges is a set of source intervals (cold error-path blocks).
type posRanges []posRange

type posRange struct{ from, to token.Pos }

func (rs posRanges) contains(p token.Pos) bool {
	for _, r := range rs {
		if r.from <= p && p < r.to {
			return true
		}
	}
	return false
}

// coldRanges collects the nested blocks that end by returning a non-nil
// error or panicking. Allocations there — wrapped errors, diagnostics —
// happen at most once per failure, not per epoch, so they are exempt. The
// function's own top-level body never counts as cold, even when the final
// return carries an error.
func coldRanges(info *types.Info, fd *ast.FuncDecl) posRanges {
	var out posRanges
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		b, ok := n.(*ast.BlockStmt)
		if !ok || b == fd.Body || len(b.List) == 0 {
			return true
		}
		if coldExit(info, b.List[len(b.List)-1]) {
			out = append(out, posRange{b.Pos(), b.End()})
		}
		return true
	})
	return out
}

// coldExit reports whether st leaves the function on a failure path: a
// return whose results include a non-nil error-typed expression, or a
// panic.
func coldExit(info *types.Info, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if t := info.TypeOf(r); t != nil && isErrorType(t) {
				return true
			}
		}
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				return true
			}
		}
	}
	return false
}

// errorIface is the universe error interface, for Implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() == nil && obj.Name() == "error" {
			return true
		}
	}
	return types.Implements(t, errorIface)
}

// allocFinding is one allocating construct: what is the short class name
// used when reporting at a caller's call site, msg the full sentence.
type allocFinding struct {
	pos  token.Pos
	what string
	msg  string
}

// allocFindings walks fd's body for heap-allocating constructs, skipping
// the cold ranges. Function-literal interiors are not descended into — the
// literal itself is reported when it captures (its environment allocates),
// and a non-capturing literal is a static funcval.
func allocFindings(pkg *driver.Package, fd *ast.FuncDecl, cold posRanges) []allocFinding {
	info := pkg.Info
	evidence := collectCapEvidence(info, fd)
	var out []allocFinding
	add := func(pos token.Pos, what, format string, args ...any) {
		if cold.contains(pos) {
			return
		}
		out = append(out, allocFinding{pos: pos, what: what, msg: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if name := capturedVar(info, fd, n); name != "" {
				add(n.Pos(), "closure capture",
					"closure captures %q, heap-allocating its environment", name)
			}
			return false
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal", "slice literal allocates its backing array")
			case *types.Map:
				add(n.Pos(), "map literal", "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "&composite literal", "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n.X)) {
				add(n.Pos(), "string concat", "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				add(n.Pos(), "string concat", "string += allocates")
			}
		case *ast.CallExpr:
			checkHotCall(info, n, evidence, add)
		}
		return true
	})
	return out
}

// checkHotCall classifies one call: allocating builtins, allocating
// conversions, fmt, and implicit interface boxing of arguments.
func checkHotCall(info *types.Info, call *ast.CallExpr, evidence capEvidence,
	add func(token.Pos, string, string, ...any)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make", "make allocates; hoist the buffer into a reused scratch arena")
			case "new":
				add(call.Pos(), "new", "new allocates; hoist the value into a reused scratch arena")
			case "append":
				if len(call.Args) > 0 && !evidence.covers(call.Args[0]) {
					add(call.Pos(), "append growth",
						"append without preallocated-capacity evidence (3-arg make or x[:0] reslice in this function) may grow its backing array")
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		switch {
		case isStringType(to) && isByteOrRuneSlice(from), isByteOrRuneSlice(to) && isStringType(from):
			add(call.Pos(), "string conversion", "string<->[]byte/[]rune conversion copies and allocates")
		case isInterfaceType(to) && boxes(from):
			add(call.Pos(), "interface boxing", "conversion of %s into interface %s allocates", from, to)
		}
		return
	}
	if fn := callee(info, call); fn != nil && fromPkg(fn, "fmt") {
		add(call.Pos(), "fmt call", "fmt.%s allocates (formatting state and boxed arguments)", fn.Name())
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return // f(xs...) passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if at := info.TypeOf(arg); isInterfaceType(pt) && boxes(at) {
			add(arg.Pos(), "interface boxing",
				"implicit boxing of %s into %s allocates; pass a pointer or use a concrete API", at, pt)
		}
	}
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointer-shaped values (pointers, channels, maps, funcs,
// unsafe pointers) fit the interface word directly, everything else is
// copied to the heap. Interfaces and nil never re-box.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// capEvidence records, per function, the expressions (rendered as source
// text) that were assigned a preallocated capacity: x = make(T, n, c) or
// x = buf[:0]. An append whose first argument is covered — or is itself a
// [:0] reslice — reuses that capacity in the steady state.
type capEvidence map[string]bool

func (ev capEvidence) covers(appendee ast.Expr) bool {
	appendee = ast.Unparen(appendee)
	if sl, ok := appendee.(*ast.SliceExpr); ok && isZeroLiteral(sl.High) {
		return true
	}
	return ev[types.ExprString(appendee)]
}

func collectCapEvidence(info *types.Info, fd *ast.FuncDecl) capEvidence {
	ev := capEvidence{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if isEvidenceExpr(info, as.Rhs[i]) {
				ev[types.ExprString(lhs)] = true
			}
		}
		return true
	})
	return ev
}

func isEvidenceExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "make" && len(e.Args) == 3
	case *ast.SliceExpr:
		return isZeroLiteral(e.High)
	}
	return false
}

func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// capturedVar returns the name of a variable the literal captures from the
// enclosing function (parameters and locals of fd used inside lit but
// declared outside it), or "" when the literal is capture-free.
// Package-level objects are not captures — they need no environment.
func capturedVar(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || !v.Pos().IsValid() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
		}
		return name == ""
	})
	return name
}
