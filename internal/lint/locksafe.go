package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"ken/internal/lint/driver"
)

// LockSafe flags the two mutex mistakes that turn a fast critical section
// into a stall or a deadlock: holding a sync.Mutex/RWMutex across a
// blocking operation (channel send/receive/select, network or file I/O),
// and a Lock whose matching Unlock is not reachable on every return path.
// The analysis is per statement list — a Lock is matched with the next
// same-receiver Unlock in its block, or with an immediately following
// defer.
var LockSafe = &driver.Analyzer{
	Name: "locksafe",
	Doc: "flags a held sync.Mutex/RWMutex across a channel send/receive/select or a " +
		"network/file I/O call (net, os, io, bufio, net/http, time.Sleep), and a Lock " +
		"whose Unlock is not reachable on every return path; deliberate I/O-under-lock " +
		"serialization escapes with //lint:ignore locksafe <reason>",
	Run: runLockSafe,
}

func runLockSafe(pass *driver.Pass) error {
	info := pass.Pkg.Info
	// Every function body — declarations and literals — is analyzed on its
	// own: a nested literal's statements run on the literal's schedule, not
	// the enclosing function's, so its locks pair within the literal.
	var bodies []*ast.BlockStmt
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	for _, body := range bodies {
		b := body
		ast.Inspect(b, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != b {
				return false
			}
			if blk, ok := n.(*ast.BlockStmt); ok {
				checkLockList(pass, info, blk.List, b)
			}
			return true
		})
	}
	return nil
}

// lockCall decomposes mu.Lock()/mu.RLock() on a sync mutex into its
// receiver source text and lock kind. ok is false for anything else.
func lockCall(info *types.Info, st ast.Stmt) (recv string, rlock bool, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", false, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", false, false
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return "", false, false
	}
	return types.ExprString(sel.X), sel.Sel.Name == "RLock", true
}

// unlockMatches reports whether st is the Unlock/RUnlock pairing the given
// lock — either a direct call statement or, when deferOK, a defer of one.
func unlockMatches(st ast.Stmt, recv string, rlock, deferOK bool) bool {
	var call *ast.CallExpr
	switch s := st.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		if !deferOK {
			return false
		}
		call = s.Call
	}
	if call == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	want := "Unlock"
	if rlock {
		want = "RUnlock"
	}
	return sel.Sel.Name == want && types.ExprString(sel.X) == recv
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// checkLockList scans one statement list for Lock statements and checks
// the region each one guards. A Lock immediately followed by its deferred
// Unlock guards the rest of the enclosing function body; otherwise the
// region runs to the next matching Unlock in this list (returns inside it
// must unlock first), or to the end of the list.
func checkLockList(pass *driver.Pass, info *types.Info, list []ast.Stmt, funcBody *ast.BlockStmt) {
	for i, st := range list {
		recv, rlock, ok := lockCall(info, st)
		if !ok {
			continue
		}
		if i+1 < len(list) && unlockMatches(list[i+1], recv, rlock, true) {
			if _, isDefer := list[i+1].(*ast.DeferStmt); isDefer {
				// Held until the function returns: every later statement of
				// the function body is inside the critical section.
				reportBlockingOps(pass, info, stmtsAfter(funcBody, list[i+1]), recv)
				continue
			}
			continue // lock; unlock — empty critical section
		}
		var region []ast.Stmt
		closed := false
		for _, rest := range list[i+1:] {
			if unlockMatches(rest, recv, rlock, false) {
				closed = true
				break
			}
			region = append(region, rest)
		}
		reportBlockingOps(pass, info, region, recv)
		reportLockedReturns(pass, region, recv, rlock)
		if !closed && !unlocksSomewhere(region, recv, rlock) {
			pass.Reportf(st.Pos(), "%s.Lock with no matching Unlock on this path", recv)
		}
	}
}

// stmtsAfter returns every statement of body that starts after marker —
// the region a deferred Unlock leaves guarded.
func stmtsAfter(body *ast.BlockStmt, marker ast.Stmt) []ast.Stmt {
	var all []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.BlockStmt:
			for _, st := range n.List {
				if st.Pos() > marker.End() {
					all = append(all, st)
				}
			}
		}
		return true
	})
	// Keep only the outermost statements: nested ones are reached through
	// their parents when the region is inspected, and keeping both would
	// double-report.
	var out []ast.Stmt
	for _, st := range all {
		nested := false
		for _, other := range all {
			if other != st && other.Pos() <= st.Pos() && st.End() <= other.End() {
				nested = true
				break
			}
		}
		if !nested {
			out = append(out, st)
		}
	}
	return out
}

// unlocksSomewhere reports whether any statement nested in the region
// unlocks recv — branch-local unlock+return patterns.
func unlocksSomewhere(region []ast.Stmt, recv string, rlock bool) bool {
	for _, st := range region {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			if es, ok := n.(*ast.ExprStmt); ok && unlockMatches(es, recv, rlock, false) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// reportLockedReturns flags every return inside the region that is not
// preceded, in its innermost block, by an Unlock of recv.
func reportLockedReturns(pass *driver.Pass, region []ast.Stmt, recv string, rlock bool) {
	check := func(list []ast.Stmt) {
		unlocked := false
		for _, st := range list {
			if unlockMatches(st, recv, rlock, true) {
				unlocked = true
			}
			if ret, ok := st.(*ast.ReturnStmt); ok && !unlocked {
				pass.Reportf(ret.Pos(),
					"return with %s held; Unlock is not reachable on this path", recv)
			}
		}
	}
	check(region)
	for _, st := range region {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				check(n.List)
			case *ast.FuncLit:
				return false
			}
			return true
		})
	}
}

// blockingPkgs are the stdlib packages whose calls can block on the
// network or the filesystem.
var blockingPkgs = []string{"net", "os", "io", "bufio", "net/http"}

// reportBlockingOps flags channel operations and I/O calls inside the
// guarded region. Statement lists are processed in order and stop at an
// Unlock of recv (of either kind) — a branch that unlocks before its
// blocking op is lock-free from there on. Function-literal interiors run
// later, outside the critical section, and are skipped.
func reportBlockingOps(pass *driver.Pass, info *types.Info, region []ast.Stmt, recv string) {
	var reportList func(list []ast.Stmt)
	var inspectStmt func(st ast.Stmt)
	reportList = func(list []ast.Stmt) {
		for _, st := range list {
			if unlockMatches(st, recv, false, true) || unlockMatches(st, recv, true, true) {
				return
			}
			inspectStmt(st)
		}
	}
	inspectStmt = func(st ast.Stmt) {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.BlockStmt:
				reportList(n.List)
				return false
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send while %s is held", recv)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive while %s is held", recv)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select while %s is held", recv)
				return false // the comm clauses are the select; one report
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel while %s is held", recv)
					}
				}
			case *ast.CallExpr:
				fn := callee(info, n)
				if fn == nil {
					return true
				}
				for _, p := range blockingPkgs {
					if funcPkgPath(fn) == p {
						pass.Reportf(n.Pos(),
							"%s.%s (network/file I/O) called while %s is held", p, fn.Name(), recv)
						return true
					}
				}
				if fromPkg(fn, "time") && fn.Name() == "Sleep" {
					pass.Reportf(n.Pos(), "time.Sleep while %s is held", recv)
				}
			}
			return true
		})
	}
	reportList(region)
}
