// Command kensinkd is the multi-tenant base-station daemon: one listener
// hosting many concurrent deployments. Each kensource connection opens
// with a session handshake carrying its serialized deployment spec; the
// daemon builds that tenant's replica (deduplicating builds across
// tenants sharing a spec), applies its report stream under a bounded
// frame budget — slow tenants are shed with a typed reject, never
// blocking the accept loop — and serves live answers over HTTP:
//
//	kensinkd -listen 127.0.0.1:7070 -http 127.0.0.1:7071 &
//	kensource -connect 127.0.0.1:7070 -tenant a -seed 1 -steps 500 &
//	kensource -connect 127.0.0.1:7070 -tenant b -seed 7 -steps 500 &
//	curl 'http://127.0.0.1:7071/v1/tenants'
//	curl 'http://127.0.0.1:7071/v1/query?tenant=a'
//	curl 'http://127.0.0.1:7071/v1/query?tenant=a&agg=avg&attrs=0,1,2'
//
// With -pin the daemon admits only the deployment described by its own
// -dataset/-seed/-train/-k/-eps flags and rejects every other spec with
// a typed spec-mismatch naming both sides. With -obs-addr it serves the
// daemon-wide sinkd_* metrics plus /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/sinkd"
	"ken/internal/slo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options carries the parsed flags; run stays a thin parser so the whole
// daemon path is testable without a process boundary.
type options struct {
	listen      string
	httpAddr    string
	pin         bool
	maxTenants  int
	frameBudget int
	applyDelay  time.Duration
	staleAfter  time.Duration
	latBudget   time.Duration
	params      deploy.Params
	ob          *obs.Observer

	// ready, when non-nil, receives the bound session and HTTP addresses
	// once both listeners are up (tests use it for ephemeral ports).
	ready chan<- [2]string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kensinkd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	o.params.Register(fs)
	fs.StringVar(&o.listen, "listen", "127.0.0.1:7070", "address to accept source sessions on")
	fs.StringVar(&o.httpAddr, "http", "127.0.0.1:7071", "address of the /v1 query API (empty = off)")
	fs.BoolVar(&o.pin, "pin", false, "admit only the deployment described by the -dataset/-seed/-train/-k/-eps flags; reject every other spec")
	fs.IntVar(&o.maxTenants, "max-tenants", 1024, "reject sessions beyond this many live tenants")
	fs.IntVar(&o.frameBudget, "frame-budget", 256, "queued frames per tenant before it is shed")
	fs.DurationVar(&o.applyDelay, "apply-delay", 0, "fault injection: slow every frame apply by this much (ops rehearsal for the backpressure/shed path)")
	fs.DurationVar(&o.staleAfter, "stale-after", 0, "mark a silent tenant stale in /v1/health after this long (0 = slo default)")
	fs.DurationVar(&o.latBudget, "latency-budget", 0, "ingest→apply latency above which an ε deviation counts as a violation (0 = slo default)")
	obsAddr := fs.String("obs-addr", "", "serve the daemon /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	var logFlags obs.LogFlags
	logFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := logFlags.Setup(nil); err != nil {
		fmt.Fprintf(stderr, "kensinkd: %v\n", err)
		return 2
	}
	o.ob = &obs.Observer{Reg: obs.NewRegistry()}
	if *obsAddr != "" {
		_, bound, err := obs.Serve(*obsAddr, o.ob.Reg)
		if err != nil {
			slog.Error("observability endpoint", "err", err)
			return 1
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := o.run(ctx, stdout); err != nil {
		slog.Error("run failed", "err", err)
		return 1
	}
	return 0
}

func (o options) run(ctx context.Context, stdout io.Writer) error {
	cfg := sinkd.Config{
		MaxTenants:  o.maxTenants,
		FrameBudget: o.frameBudget,
		ApplyDelay:  o.applyDelay,
		Obs:         o.ob,
		SLO:         slo.Config{StaleAfter: o.staleAfter, LatencyBudget: o.latBudget},
	}
	if o.pin {
		if err := o.params.Validate(); err != nil {
			return err
		}
		pin := o.params
		cfg.Pin = &pin
	}
	d := sinkd.New(cfg)

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	defer ln.Close()

	var httpLn net.Listener
	if o.httpAddr != "" {
		httpLn, err = net.Listen("tcp", o.httpAddr)
		if err != nil {
			return err
		}
		defer httpLn.Close()
	}

	pinDesc := "off"
	if cfg.Pin != nil {
		pinDesc = cfg.Pin.ReplicaKey()
	}
	slog.Info("kensinkd up", "listen", ln.Addr().String(), "pin", pinDesc,
		"max_tenants", o.maxTenants, "frame_budget", o.frameBudget)
	fmt.Fprintf(stdout, "kensinkd: sessions on %s\n", ln.Addr().String())

	srvErr := make(chan error, 2)
	var httpSrv *http.Server
	if httpLn != nil {
		slog.Info("query API up", "addr", httpLn.Addr().String(),
			"paths", "/v1/tenants /v1/query /v1/metrics /v1/health /v1/slo")
		fmt.Fprintf(stdout, "kensinkd: query API on http://%s/v1\n", httpLn.Addr().String())
		httpSrv = &http.Server{Handler: d.Handler()}
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && err != http.ErrServerClosed {
				srvErr <- err
			}
		}()
	}
	if o.ready != nil {
		httpAddr := ""
		if httpLn != nil {
			httpAddr = httpLn.Addr().String()
		}
		o.ready <- [2]string{ln.Addr().String(), httpAddr}
	}
	go func() { srvErr <- d.Serve(ln) }()

	select {
	case <-ctx.Done():
		slog.Info("shutting down")
	case err := <-srvErr:
		if err != nil {
			return err
		}
	}
	_ = ln.Close()
	if httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}
	d.Close()
	for _, t := range d.Tenants() {
		slog.Info("tenant", "name", t.Name, "state", string(t.State),
			"spec", t.Spec, "frames", t.Step, "heartbeats", t.Heartbeats)
	}
	return nil
}
