package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ken/internal/deploy"
	"ken/internal/sinkd"
	"ken/internal/stream"
	"ken/internal/wire"
)

func TestRunFlagError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// startDaemon runs options.run under a cancellable context and hands back
// the bound session and HTTP addresses.
func startDaemon(t *testing.T, o options) ([2]string, *bytes.Buffer, <-chan error, context.CancelFunc) {
	t.Helper()
	ready := make(chan [2]string, 1)
	o.ready = ready
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() { errCh <- o.run(ctx, &out) }()
	select {
	case addrs := <-ready:
		return addrs, &out, errCh, cancel
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon exited before ready: %v", err)
		return [2]string{}, nil, nil, nil
	}
}

func streamTenant(t *testing.T, addr, name string, p deploy.Params) {
	t.Helper()
	dep, err := deploy.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := stream.Handshake(conn, wire.Hello{Tenant: name, Spec: p.EncodeSpec()}); err != nil {
		t.Fatal(err)
	}
	if err := src.Pump(conn, dep.Test); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	o := options{listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0", maxTenants: 8, frameBudget: 64}
	addrs, out, errCh, cancel := startDaemon(t, o)
	defer cancel()

	const steps = 25
	p := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: steps}
	streamTenant(t, addrs[0], "e2e", p)

	// The daemon applies asynchronously; poll the query API until done.
	var q sinkd.QueryResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/query?tenant=e2e", addrs[1]))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		if q.Answer.Step >= steps {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query stuck at step %d, want %d", q.Answer.Step, steps)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(q.Answer.Estimates) == 0 || len(q.Answer.Eps) != len(q.Answer.Estimates) {
		t.Fatalf("answer %+v", q.Answer)
	}

	// The health endpoint is live on the same mux: a tenant that streamed
	// to completion leaves the daemon healthy (clean close is benign).
	hresp, err := http.Get(fmt.Sprintf("http://%s/v1/health", addrs[1]))
	if err != nil {
		t.Fatal(err)
	}
	var rep sinkd.HealthReport
	if err := json.NewDecoder(hresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || rep.Status != "ok" || len(rep.Tenants) != 1 {
		t.Fatalf("/v1/health: code=%d report=%+v, want 200 ok with 1 tenant", hresp.StatusCode, rep)
	}

	cancel()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kensinkd: sessions on") ||
		!strings.Contains(out.String(), "kensinkd: query API on http://") {
		t.Fatalf("stdout: %q", out.String())
	}
}

// TestDaemonPin: with -pin the daemon admits only its own flag block's
// deployment and rejects everything else with a typed spec mismatch.
func TestDaemonPin(t *testing.T) {
	o := options{
		listen: "127.0.0.1:0", httpAddr: "",
		pin:    true,
		params: deploy.Params{Dataset: "garden", Seed: 1},
	}
	addrs, _, errCh, cancel := startDaemon(t, o)
	defer cancel()

	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	other := deploy.Params{Dataset: "garden", Seed: 2, TestSteps: 5}
	_, err = stream.Handshake(conn, wire.Hello{Tenant: "bad", Spec: other.EncodeSpec()})
	if !errors.Is(err, wire.ErrSpecRejected) || !strings.Contains(err.Error(), "spec-mismatch") {
		t.Fatalf("got %v, want spec-mismatch ErrSpecRejected", err)
	}

	// The pinned spec itself — with a different step count — is admitted.
	ok, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Close()
	match := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 5}
	if _, err := stream.Handshake(ok, wire.Hello{Tenant: "good", Spec: match.EncodeSpec()}); err != nil {
		t.Fatalf("pinned daemon rejected its own spec: %v", err)
	}

	cancel()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
