// Command kensim runs a single Ken data-collection simulation: it generates
// a deployment trace, fits models on the training prefix, resolves the
// requested scheme through the core registry (selecting a Disjoint-Cliques
// partition with Greedy-k where needed), replays it over the test window,
// and reports savings, cost and the error guarantee.
//
// Usage:
//
//	kensim -dataset garden -scheme djc -k 3
//	kensim -dataset lab -scheme apc -test 2000
//	kensim -dataset garden -scheme djc -k 2 -base 5     # topology-priced run
//	kensim -dataset garden -scheme avg
//	kensim -dataset garden -scheme djc4                 # registry name with k inline
//	kensim -dataset garden -scheme all -parallel 4      # side-by-side comparison
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/engine"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
	"ken/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "garden", "deployment: garden or lab")
	scheme := flag.String("scheme", "djc", "scheme name resolved via the core registry: tinydb, apc, avg, djc (uses -k), djc<k>, or all")
	k := flag.Int("k", 3, "max clique size for the djc scheme")
	seed := flag.Int64("seed", 1, "generator seed")
	train := flag.Int("train", 100, "training steps (hours)")
	test := flag.Int("test", 1500, "test steps (hours)")
	base := flag.Float64("base", 0, "base-station cost multiplier; 0 = topology-independent accounting")
	eps := flag.Float64("eps", 0, "error bound override; 0 = attribute default (0.5°C)")
	loss := flag.Float64("loss", 0, "report loss probability (djc only; enables the §6 lossy mode)")
	heartbeat := flag.Int("heartbeat", 0, "heartbeat interval in steps under -loss (0 = none)")
	prob := flag.Float64("prob", 0, "probabilistic-reporting steepness (djc only; 0 = deterministic)")
	parallel := flag.Int("parallel", 0, "worker pool width for -scheme all (0 = GOMAXPROCS, 1 = sequential)")
	var of obs.CmdFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	ob, cleanup, err := of.Setup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kensim: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *dataset, *scheme, *k, *seed, *train, *test, *base, *eps, *loss, *heartbeat, *prob, *parallel, ob); err != nil {
		slog.Error("run failed", "err", err)
		cleanup()
		os.Exit(1)
	}
	cleanup()
}

// specFor assembles the SchemeSpec that resolves name through the core
// registry. "djc" (the flag default) becomes "djc<k>".
func specFor(name string, k int, train [][]float64, eps []float64, seed int64, top *network.Topology, loss float64, heartbeat int, prob float64, ob *obs.Observer) core.SchemeSpec {
	if name == "djc" {
		name = fmt.Sprintf("djc%d", k)
	}
	spec := core.SchemeSpec{
		Scheme:   name,
		Eps:      eps,
		Train:    train,
		FitCfg:   model.FitConfig{Period: 24},
		MC:       mc.Config{Seed: seed},
		Metric:   cliques.MetricReduction,
		Topology: top,
		Obs:      ob,
	}
	if prob > 0 {
		spec.Prob = &core.ProbConfig{Steepness: prob, Seed: seed}
	}
	if loss > 0 {
		spec.Lossy = &core.LossyConfig{LossRate: loss, HeartbeatEvery: heartbeat, Seed: seed}
	}
	return spec
}

func run(ctx context.Context, dataset, scheme string, k int, seed int64, trainN, testN int, baseMult, epsOverride, loss float64, heartbeat int, prob float64, parallel int, ob *obs.Observer) error {
	var (
		tr  *trace.Trace
		err error
	)
	switch dataset {
	case "garden":
		tr, err = trace.GenerateGarden(seed, trainN+testN)
	case "lab":
		tr, err = trace.GenerateLab(seed, trainN+testN)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainN], rows[trainN:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = trace.Temperature.DefaultEpsilon()
		if epsOverride > 0 {
			eps[i] = epsOverride
		}
	}

	var top *network.Topology
	if baseMult > 0 {
		top, err = network.Uniform(n, 1, baseMult)
		if err != nil {
			return err
		}
	}

	if scheme == "all" {
		return compareAll(ctx, train, test, eps, k, seed, top, parallel, ob)
	}

	s, err := core.Build(specFor(scheme, k, train, eps, seed, top, loss, heartbeat, prob, ob))
	if err != nil {
		return err
	}
	// Schemes selected through Greedy-k expose their partition.
	if p, ok := s.(interface{ Partition() *cliques.Partition }); ok {
		fmt.Printf("partition    %s\n", p.Partition())
	}

	res, err := core.Run(ctx, s, test, core.RunOptions{Eps: eps, Observer: ob})
	if err != nil {
		return err
	}

	fmt.Printf("dataset      %s (%d nodes)\n", dataset, n)
	fmt.Printf("scheme       %s\n", res.Scheme)
	fmt.Printf("test window  %d steps, ε=%.2g\n", res.Steps, eps[0])
	fmt.Printf("reported     %d of %d values (%.1f%%)\n",
		res.ValuesReported, res.Steps*res.Dim, 100*res.FractionReported())
	fmt.Printf("max |error|  %.4f\n", res.MaxAbsError)
	fmt.Printf("mean |error| %.4f\n", res.MeanAbsError)
	fmt.Printf("violations   %d\n", res.BoundViolations)
	if top != nil {
		fmt.Printf("cost/step    intra %.2f + inter %.2f = %.2f\n",
			res.IntraCost/float64(res.Steps), res.SinkCost/float64(res.Steps),
			res.TotalCost()/float64(res.Steps))
	}
	return nil
}

// compareAll runs every scheme over the same test window on the engine's
// worker pool and prints a side-by-side table (rows come back in scheme
// order regardless of the pool width). Cells share ob's trace sink; the
// engine scopes each cell's events by item index, so the trace audits
// identically whatever the pool width.
func compareAll(ctx context.Context, train, test [][]float64, eps []float64, k int, seed int64, top *network.Topology, parallel int, ob *obs.Observer) error {
	names := []string{"tinydb", "apc", "avg"}
	for kk := 1; kk <= k; kk++ {
		names = append(names, fmt.Sprintf("djc%d", kk))
	}
	eng := engine.New(engine.Options{Workers: parallel, Obs: ob})
	ctx = engine.WithScope(ctx, "compare")
	lines, err := engine.Map(ctx, eng, names, func(ctx context.Context, _ int, name string) (string, error) {
		s, err := core.Build(specFor(name, k, train, eps, seed, top, 0, 0, 0, ob))
		if err != nil {
			return "", fmt.Errorf("%s: %w", name, err)
		}
		res, err := core.Run(ctx, s, test, core.RunOptions{Eps: eps, Observer: ob, Scope: engine.Scope(ctx)})
		if err != nil {
			return "", fmt.Errorf("%s: %w", name, err)
		}
		line := fmt.Sprintf("%-8s %9.1f%% %10.4f %12d", name,
			100*res.FractionReported(), res.MaxAbsError, res.BoundViolations)
		if top != nil {
			line += fmt.Sprintf(" %12.2f", res.TotalCost()/float64(res.Steps))
		}
		return line, nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s %12s", "scheme", "reported", "max |err|", "violations")
	if top != nil {
		fmt.Printf(" %12s", "cost/step")
	}
	fmt.Println()
	for _, line := range lines {
		fmt.Println(line)
	}
	return nil
}
