// Command kensim runs a single Ken data-collection simulation: it generates
// a deployment trace, fits models on the training prefix, selects a
// Disjoint-Cliques partition with Greedy-k, replays the chosen scheme over
// the test window, and reports savings, cost and the error guarantee.
//
// Usage:
//
//	kensim -dataset garden -scheme djc -k 3
//	kensim -dataset lab -scheme apc -test 2000
//	kensim -dataset garden -scheme djc -k 2 -base 5     # topology-priced run
//	kensim -dataset garden -scheme avg
//	kensim -dataset garden -scheme all                  # side-by-side comparison
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
	"ken/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "garden", "deployment: garden or lab")
	scheme := flag.String("scheme", "djc", "scheme: tinydb, apc, avg or djc")
	k := flag.Int("k", 3, "max clique size for the djc scheme")
	seed := flag.Int64("seed", 1, "generator seed")
	train := flag.Int("train", 100, "training steps (hours)")
	test := flag.Int("test", 1500, "test steps (hours)")
	base := flag.Float64("base", 0, "base-station cost multiplier; 0 = topology-independent accounting")
	eps := flag.Float64("eps", 0, "error bound override; 0 = attribute default (0.5°C)")
	loss := flag.Float64("loss", 0, "report loss probability (djc only; enables the §6 lossy mode)")
	heartbeat := flag.Int("heartbeat", 0, "heartbeat interval in steps under -loss (0 = none)")
	prob := flag.Float64("prob", 0, "probabilistic-reporting steepness (djc only; 0 = deterministic)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run (empty = off)")
	traceOut := flag.String("trace-out", "", "write protocol event JSONL (report/suppress decisions, epochs) to this file")
	var logFlags obs.LogFlags
	logFlags.Register(flag.CommandLine)
	flag.Parse()

	if _, err := logFlags.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "kensim: %v\n", err)
		os.Exit(2)
	}
	ob, cleanup, err := setupObs(*obsAddr, *traceOut)
	if err != nil {
		slog.Error("observability setup failed", "err", err)
		os.Exit(1)
	}
	if err := run(*dataset, *scheme, *k, *seed, *train, *test, *base, *eps, *loss, *heartbeat, *prob, ob); err != nil {
		slog.Error("run failed", "err", err)
		cleanup()
		os.Exit(1)
	}
	cleanup()
}

// setupObs assembles the observer from the -obs-addr / -trace-out flags.
// The returned cleanup flushes the trace sink.
func setupObs(addr, traceOut string) (*obs.Observer, func(), error) {
	ob := &obs.Observer{Reg: obs.NewRegistry()}
	cleanup := func() {}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, nil, err
		}
		ob.Trace = obs.NewTracer(f)
		cleanup = func() {
			if err := ob.Trace.Flush(); err != nil {
				slog.Warn("trace flush failed", "err", err)
			}
			if err := f.Close(); err != nil {
				slog.Warn("trace close failed", "err", err)
			}
			slog.Info("protocol trace written", "path", traceOut, "events", ob.Trace.Events())
		}
	}
	if addr != "" {
		_, bound, err := obs.Serve(addr, ob.Reg)
		if err != nil {
			return nil, nil, err
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	return ob, cleanup, nil
}

func run(dataset, scheme string, k int, seed int64, trainN, testN int, baseMult, epsOverride, loss float64, heartbeat int, prob float64, ob *obs.Observer) error {
	var (
		tr  *trace.Trace
		err error
	)
	switch dataset {
	case "garden":
		tr, err = trace.GenerateGarden(seed, trainN+testN)
	case "lab":
		tr, err = trace.GenerateLab(seed, trainN+testN)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainN], rows[trainN:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = trace.Temperature.DefaultEpsilon()
		if epsOverride > 0 {
			eps[i] = epsOverride
		}
	}

	var top *network.Topology
	if baseMult > 0 {
		top, err = network.Uniform(n, 1, baseMult)
		if err != nil {
			return err
		}
	}

	if scheme == "all" {
		return compareAll(tr, train, test, eps, k, seed, top)
	}

	var s core.Scheme
	switch scheme {
	case "tinydb":
		s, err = core.NewTinyDB(n, top)
	case "apc":
		s, err = core.NewCache(eps, top)
	case "avg":
		s, err = core.NewAverage(train, eps, model.FitConfig{Period: 24}, top)
	case "djc":
		s, err = buildDjC(tr, train, eps, k, seed, top, loss, heartbeat, prob, ob)
	default:
		return fmt.Errorf("unknown scheme %q", scheme)
	}
	if err != nil {
		return err
	}

	res, err := core.RunObserved(s, test, eps, ob)
	if err != nil {
		return err
	}

	fmt.Printf("dataset      %s (%d nodes)\n", dataset, n)
	fmt.Printf("scheme       %s\n", res.Scheme)
	fmt.Printf("test window  %d steps, ε=%.2g\n", res.Steps, eps[0])
	fmt.Printf("reported     %d of %d values (%.1f%%)\n",
		res.ValuesReported, res.Steps*res.Dim, 100*res.FractionReported())
	fmt.Printf("max |error|  %.4f\n", res.MaxAbsError)
	fmt.Printf("mean |error| %.4f\n", res.MeanAbsError)
	fmt.Printf("violations   %d\n", res.BoundViolations)
	if top != nil {
		fmt.Printf("cost/step    intra %.2f + inter %.2f = %.2f\n",
			res.IntraCost/float64(res.Steps), res.SinkCost/float64(res.Steps),
			res.TotalCost()/float64(res.Steps))
	}
	return nil
}

// compareAll runs every scheme over the same test window and prints a
// side-by-side table.
func compareAll(tr *trace.Trace, train, test [][]float64, eps []float64, k int, seed int64, top *network.Topology) error {
	n := len(eps)
	type entry struct {
		name  string
		build func() (core.Scheme, error)
	}
	entries := []entry{
		{"tinydb", func() (core.Scheme, error) { return core.NewTinyDB(n, top) }},
		{"apc", func() (core.Scheme, error) { return core.NewCache(eps, top) }},
		{"avg", func() (core.Scheme, error) {
			return core.NewAverage(train, eps, model.FitConfig{Period: 24}, top)
		}},
	}
	for kk := 1; kk <= k; kk++ {
		kk := kk
		entries = append(entries, entry{fmt.Sprintf("djc%d", kk), func() (core.Scheme, error) {
			return buildDjCQuiet(tr, train, eps, kk, seed, top)
		}})
	}
	fmt.Printf("%-8s %10s %10s %12s", "scheme", "reported", "max |err|", "violations")
	if top != nil {
		fmt.Printf(" %12s", "cost/step")
	}
	fmt.Println()
	for _, e := range entries {
		s, err := e.build()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		res, err := core.Run(s, test, eps)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("%-8s %9.1f%% %10.4f %12d", e.name,
			100*res.FractionReported(), res.MaxAbsError, res.BoundViolations)
		if top != nil {
			fmt.Printf(" %12.2f", res.TotalCost()/float64(res.Steps))
		}
		fmt.Println()
	}
	return nil
}

// buildDjCQuiet is buildDjC without the partition print (compare mode).
func buildDjCQuiet(tr *trace.Trace, train [][]float64, eps []float64, k int, seed int64, top *network.Topology) (core.Scheme, error) {
	eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24},
		mc.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	selTop := top
	if selTop == nil {
		selTop, err = network.Uniform(tr.Deployment.N(), 1, 5)
		if err != nil {
			return nil, err
		}
	}
	p, err := cliques.Greedy(selTop, eval, cliques.GreedyConfig{K: k, Metric: cliques.MetricReduction})
	if err != nil {
		return nil, err
	}
	return core.NewKen(core.KenConfig{
		Name:      fmt.Sprintf("DjC%d", k),
		Partition: p,
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
		Topology:  top,
	})
}

// buildDjC selects a Greedy-k partition and wires the Ken scheme,
// optionally wrapped with loss injection or probabilistic reporting.
func buildDjC(tr *trace.Trace, train [][]float64, eps []float64, k int, seed int64, top *network.Topology, loss float64, heartbeat int, prob float64, ob *obs.Observer) (core.Scheme, error) {
	eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24},
		mc.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	selTop := top
	if selTop == nil {
		// Partition selection needs some topology; use the uniform ×5 the
		// paper's cost study centres on.
		selTop, err = network.Uniform(tr.Deployment.N(), 1, 5)
		if err != nil {
			return nil, err
		}
	}
	p, err := cliques.Greedy(selTop, eval, cliques.GreedyConfig{K: k, Metric: cliques.MetricReduction})
	if err != nil {
		return nil, err
	}
	fmt.Printf("partition    %s\n", p)
	cfg := core.KenConfig{
		Partition: p,
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
		Topology:  top,
		Obs:       ob,
	}
	if prob > 0 {
		cfg.Prob = &core.ProbConfig{Steepness: prob, Seed: seed}
	}
	if loss > 0 {
		return core.NewLossyKen(cfg, core.LossyConfig{
			LossRate: loss, HeartbeatEvery: heartbeat, Seed: seed,
		})
	}
	return core.NewKen(cfg)
}
