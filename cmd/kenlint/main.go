// Command kenlint is the repository's custom static-analysis gate: it runs
// the internal/lint analyzer suite — mechanical enforcement of the
// determinism, seeding, wire-error and observability invariants documented
// in docs/ENGINE.md, docs/PROTOCOL.md and docs/OBSERVABILITY.md — over the
// module and exits non-zero when any diagnostic survives. See docs/LINT.md
// for the analyzer catalogue and the //lint:ignore escape hatch.
//
// Usage:
//
//	kenlint [-tests] [-list] [packages]
//
// Package patterns are module-relative ("./...", "./cmd/...", "internal/
// engine"); the default is the whole module.
package main

import (
	"flag"
	"fmt"
	"os"

	"ken/internal/lint"
	"ken/internal/lint/driver"
)

func main() {
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kenlint [-tests] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := driver.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	loader.Tests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := driver.Run(analyzers, pkgs)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kenlint: %d issue(s) in %d package(s) checked\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kenlint: %v\n", err)
	os.Exit(2)
}
