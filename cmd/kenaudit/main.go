// Command kenaudit replays a JSONL protocol trace (written by the
// pipeline's -trace-out flag) and verifies the Ken invariants offline:
// the ε-guarantee (drops repaired by ARQ retransmission excuse nothing),
// silent replica divergence, byte accounting on both the protocol and
// radio ledgers, and retransmission accounting. It also rolls up
// per-node / per-clique / per-link communication and a first-order radio
// energy estimate.
//
// Usage:
//
//	kenaudit -trace run.jsonl                 # markdown summary to stdout
//	kenaudit -trace run.jsonl -json report.json
//	kenaudit -trace run.jsonl -strict         # exit 1 on any violation
//	kenbench ... -trace-out - | kenaudit -trace -   # read stdin
//
// The report is deterministic: auditing a kenbench -parallel trace yields
// a byte-identical report to its sequential twin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ken/internal/audit"
)

func main() {
	tracePath := flag.String("trace", "", "JSONL trace to audit (\"-\" for stdin)")
	jsonOut := flag.String("json", "", "also write the machine-readable JSON report to this file (\"-\" for stdout)")
	noMD := flag.Bool("q", false, "suppress the markdown summary")
	strict := flag.Bool("strict", false, "exit nonzero when any invariant is violated")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "kenaudit: -trace is required")
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	rep, err := audit.AuditTrace(in)
	if err != nil {
		fatal(err)
	}

	if *jsonOut != "" {
		var out io.Writer = os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fatal(err)
		}
	}
	if !*noMD {
		if err := rep.WriteMarkdown(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if !rep.Clean() {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "kenaudit: VIOLATION %s\n", v.String())
		}
		if *strict {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kenaudit: %v\n", err)
	os.Exit(2)
}
