// Command kenaudit replays a JSONL protocol trace (written by the
// pipeline's -trace-out flag) and verifies the Ken invariants offline:
// the ε-guarantee (drops repaired by ARQ retransmission excuse nothing),
// silent replica divergence, byte accounting on both the protocol and
// radio ledgers, and retransmission accounting. It also rolls up
// per-node / per-clique / per-link communication and a first-order radio
// energy estimate.
//
// The trace may be a flat JSONL file or a segmented, hash-chained trace
// store directory (written by -trace-out with a directory path). Store
// directories unlock -verify-chain — cryptographic tamper detection
// before the audit — and indexed -scope/-epochs windows that seek to the
// relevant segments instead of scanning the whole trace.
//
// Usage:
//
//	kenaudit -trace run.jsonl                 # markdown summary to stdout
//	kenaudit -trace run.jsonl -json report.json
//	kenaudit -trace run.jsonl -strict         # exit 1 on any violation
//	kenbench ... -trace-out - | kenaudit -trace -   # read stdin
//	kenaudit -trace runs/ -verify-chain       # tamper check, then audit
//	kenaudit -trace runs/ -scope sim/net -epochs 100:200
//
// The report is deterministic: auditing a kenbench -parallel trace yields
// a byte-identical report to its sequential twin.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ken/internal/audit"
	"ken/internal/obs"
	"ken/internal/tracestore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// window is the optional -scope/-epochs restriction of an audit.
type window struct {
	scope    string
	hasSteps bool
	minStep  int64
	maxStep  int64
}

func (w window) active() bool { return w.scope != "" || w.hasSteps }

// match mirrors tracestore.Filter semantics exactly, so the index-driven
// segment selection is a superset of what this admits.
func (w window) match(e *obs.Event) bool {
	f := tracestore.Filter{Scope: w.scope, HasSteps: w.hasSteps, MinStep: w.minStep, MaxStep: w.maxStep}
	if !f.MatchScope(e.Scope) || !f.MatchStep(e.Step) {
		return false
	}
	// A windowed audit sees only a slice of each run, so the run_end
	// declarations (total steps/values/bytes, ε-miss reconciliation)
	// cannot hold over it; auditing the window against them would only
	// manufacture false violations.
	return !(w.hasSteps && e.Type == obs.EvRunEnd)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kenaudit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "trace to audit: JSONL file, segmented store directory, or \"-\" for stdin")
	jsonOut := fs.String("json", "", "also write the machine-readable JSON report to this file (\"-\" for stdout)")
	noMD := fs.Bool("q", false, "suppress the markdown summary")
	strict := fs.Bool("strict", false, "exit nonzero when any invariant is violated")
	verify := fs.Bool("verify-chain", false, "verify the store's hash chain before auditing (directory traces only); any bit flip, reorder or truncation exits 1 naming the segment")
	scope := fs.String("scope", "", "audit only this scope and its sub-scopes (\"sim\" matches \"sim/net\")")
	epochsFlag := fs.String("epochs", "", "audit only epochs with step in this inclusive lo:hi window (either bound may be empty); run_end totals are not checked against a window")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *tracePath == "" {
		fmt.Fprintln(stderr, "kenaudit: -trace is required")
		fs.Usage()
		return 2
	}
	win := window{scope: *scope}
	if *epochsFlag != "" {
		lo, hi, err := parseEpochs(*epochsFlag)
		if err != nil {
			fmt.Fprintf(stderr, "kenaudit: %v\n", err)
			return 2
		}
		win.hasSteps, win.minStep, win.maxStep = true, lo, hi
	}

	isDir := *tracePath != "-" && isDirTrace(*tracePath)
	if *verify && !isDir {
		fmt.Fprintln(stderr, "kenaudit: -verify-chain needs a segmented trace store directory")
		return 2
	}

	var rep *audit.Report
	switch {
	case isDir:
		if *verify {
			info, err := tracestore.VerifyChain(*tracePath)
			if err != nil {
				fmt.Fprintf(stderr, "kenaudit: %v\n", err)
				var ce *tracestore.ChainError
				if errors.As(err, &ce) {
					return 1
				}
				return 2
			}
			fmt.Fprintf(stderr, "kenaudit: chain OK: %d segments, %d events, head %s\n",
				info.Segments, info.Events, info.Head)
		}
		var err error
		rep, err = auditStore(*tracePath, win)
		if err != nil {
			fmt.Fprintf(stderr, "kenaudit: %v\n", err)
			return 2
		}
	default:
		in := stdin
		if *tracePath != "-" {
			f, err := os.Open(*tracePath)
			if err != nil {
				fmt.Fprintf(stderr, "kenaudit: %v\n", err)
				return 2
			}
			defer f.Close()
			in = f
		}
		var err error
		rep, err = auditFlat(in, win)
		if err != nil {
			fmt.Fprintf(stderr, "kenaudit: %v\n", err)
			return 2
		}
	}

	if rep.Events == 0 {
		if win.active() {
			fmt.Fprintln(stderr, "kenaudit: no events matched the -scope/-epochs window")
		} else {
			fmt.Fprintln(stderr, "kenaudit: no events in trace")
		}
	}

	if *jsonOut != "" {
		out := stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(stderr, "kenaudit: %v\n", err)
				return 2
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintf(stderr, "kenaudit: %v\n", err)
			return 2
		}
	}
	if !*noMD && rep.Events > 0 {
		if err := rep.WriteMarkdown(stdout); err != nil {
			fmt.Fprintf(stderr, "kenaudit: %v\n", err)
			return 2
		}
	}

	if !rep.Clean() {
		for _, v := range rep.Violations {
			fmt.Fprintf(stderr, "kenaudit: VIOLATION %s\n", v.String())
		}
		if *strict {
			return 1
		}
	}
	return 0
}

// isDirTrace reports whether the path names a trace store directory.
func isDirTrace(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// parseEpochs parses "lo:hi" with either bound optional.
func parseEpochs(s string) (lo, hi int64, err error) {
	loS, hiS, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-epochs wants lo:hi, got %q", s)
	}
	lo, hi = 0, int64(1)<<62
	if loS != "" {
		if lo, err = strconv.ParseInt(loS, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("-epochs lower bound %q: %v", loS, err)
		}
	}
	if hiS != "" {
		if hi, err = strconv.ParseInt(hiS, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("-epochs upper bound %q: %v", hiS, err)
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("-epochs window %q is empty (lo > hi)", s)
	}
	return lo, hi, nil
}

// auditFlat streams a flat JSONL trace (or stdin) through the auditor,
// applying the window event by event.
func auditFlat(in io.Reader, win window) (*audit.Report, error) {
	var a audit.Auditor
	if err := obs.StreamEvents(in, func(e obs.Event) error {
		if win.match(&e) {
			a.Feed(e)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return a.Finish(), nil
}

// auditStore audits a segmented trace store. The per-segment index turns
// a -scope/-epochs window into a seek: segments (and scope runs within
// them) that cannot contain matching events are never read.
func auditStore(dir string, win window) (*audit.Report, error) {
	st, err := tracestore.Open(dir)
	if err != nil {
		return nil, err
	}
	sel, err := st.Select(tracestore.Filter{
		Scope: win.scope, HasSteps: win.hasSteps, MinStep: win.minStep, MaxStep: win.maxStep,
	})
	if err != nil {
		return nil, err
	}
	var a audit.Auditor
	n := 0
	err = st.ScanSelection(sel, func(line []byte) error {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("decoding trace event %d: %w", n, err)
		}
		n++
		// The index narrows to candidate segments; the window decides
		// event by event (an offset run can still contain steps or
		// sub-scopes outside it).
		if win.match(&e) {
			a.Feed(e)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a.Finish(), nil
}
