package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ken/internal/obs"
	"ken/internal/tracestore"
)

// runKenaudit drives the CLI exactly as main does, capturing the streams.
func runKenaudit(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeCleanStore emits `epochs` one-report epochs (steps 0..epochs-1)
// through the real tracer into a segmented store and returns its path.
func writeCleanStore(t *testing.T, epochs, segEvents int) string {
	t.Helper()
	dir := t.TempDir()
	w, err := tracestore.Create(dir, tracestore.Options{MaxEvents: segEvents})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracerSink(w).WithScope("sim/net")
	for i := 0; i < epochs; i++ {
		step := int64(i)
		sp := tr.StartEpoch(obs.Event{Step: step, Clique: 0, Node: -1})
		sp.Emit(obs.Event{Type: obs.EvReport, Step: step, Clique: 0, Node: 1, Attrs: []int{0}, Values: []float64{1}})
		sp.EndEpoch(obs.Event{Step: step, Clique: 0, Node: -1, N: 1})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestEmptyTraceReportsNoEventsExitZero(t *testing.T) {
	path := writeFile(t, "empty.jsonl", "")
	code, _, stderr := runKenaudit(t, "", "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d on empty trace, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "no events in trace") {
		t.Fatalf("stderr %q does not report the empty trace", stderr)
	}
}

func TestHeaderOnlyTraceReportsNoEventsExitZero(t *testing.T) {
	path := writeFile(t, "hdr.jsonl", `{"kind":"ken-trace","schema":2}`+"\n")
	code, stdout, stderr := runKenaudit(t, "", "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d on header-only trace, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "no events in trace") {
		t.Fatalf("stderr %q does not report the empty trace", stderr)
	}
	if strings.Contains(stdout, "# Ken") {
		t.Fatalf("markdown report rendered for an empty trace:\n%s", stdout)
	}
}

func TestTruncatedMidLineTraceFails(t *testing.T) {
	path := writeFile(t, "trunc.jsonl",
		`{"kind":"ken-trace","schema":2}`+"\n"+`{"type":"report","scope":"s","st`)
	code, _, stderr := runKenaudit(t, "", "-trace", path)
	if code != 2 {
		t.Fatalf("exit %d on truncated trace, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "reading trace event") {
		t.Fatalf("stderr %q does not name the decode failure", stderr)
	}
}

func TestUnknownSchemaFails(t *testing.T) {
	path := writeFile(t, "v99.jsonl", `{"kind":"ken-trace","schema":99}`+"\n")
	code, _, stderr := runKenaudit(t, "", "-trace", path)
	if code != 2 {
		t.Fatalf("exit %d on unknown schema, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "schema") {
		t.Fatalf("stderr %q does not mention the schema", stderr)
	}
}

func TestStdinTrace(t *testing.T) {
	trace := `{"kind":"ken-trace","schema":2}` + "\n" +
		`{"type":"report","scope":"s","step":1,"clique":-1,"node":1}` + "\n"
	code, stdout, stderr := runKenaudit(t, trace, "-trace", "-")
	if code != 0 {
		t.Fatalf("exit %d on stdin trace, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "events") {
		t.Fatalf("no markdown summary on stdout:\n%s", stdout)
	}
}

func TestVerifyChainCleanStore(t *testing.T) {
	dir := writeCleanStore(t, 10, 8)
	code, _, stderr := runKenaudit(t, "", "-trace", dir, "-verify-chain", "-q")
	if code != 0 {
		t.Fatalf("exit %d on clean store, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "chain OK") {
		t.Fatalf("stderr %q does not confirm the chain", stderr)
	}
}

func TestVerifyChainCorruptionExitsOneNamingSegment(t *testing.T) {
	dir := writeCleanStore(t, 10, 8)
	seg := tracestore.SegmentPath(dir, 0)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[bytes.IndexByte(raw, '\n')+5] ^= 0x01
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runKenaudit(t, "", "-trace", dir, "-verify-chain", "-q")
	if code != 1 {
		t.Fatalf("exit %d on corrupted store, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, filepath.Base(seg)) {
		t.Fatalf("stderr %q does not name the broken segment", stderr)
	}
}

func TestVerifyChainRejectsFlatFile(t *testing.T) {
	path := writeFile(t, "flat.jsonl", `{"kind":"ken-trace","schema":2}`+"\n")
	code, _, stderr := runKenaudit(t, "", "-trace", path, "-verify-chain")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, stderr)
	}
}

func TestStoreAuditMatchesFlatAudit(t *testing.T) {
	dir := writeCleanStore(t, 30, 7)
	code, _, stderr := runKenaudit(t, "", "-trace", dir, "-verify-chain", "-json", "rep.json", "-q")
	if code != 0 {
		t.Fatalf("exit %d on store audit, want 0 (stderr: %s)", code, stderr)
	}
	defer os.Remove("rep.json")
	var rep struct {
		Events int `json:"events"`
		Epochs int `json:"epochs"`
	}
	raw, err := os.ReadFile("rep.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Events != 90 || rep.Epochs != 30 {
		t.Fatalf("store audit saw %d events / %d epochs, want 90 / 30", rep.Events, rep.Epochs)
	}
}

func TestEpochWindowSeeksViaIndex(t *testing.T) {
	dir := writeCleanStore(t, 40, 9)
	var out, errb bytes.Buffer
	if c := run([]string{"-trace", dir, "-epochs", "10:19", "-json", "-", "-q"}, strings.NewReader(""), &out, &errb); c != 0 {
		t.Fatalf("exit %d (stderr: %s)", c, errb.String())
	}
	var rep struct {
		Epochs int `json:"epochs"`
		Events int `json:"events"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out.String())
	}
	if rep.Epochs != 10 || rep.Events != 30 {
		t.Fatalf("window 10:19 audited %d epochs / %d events, want 10 / 30", rep.Epochs, rep.Events)
	}
}

func TestScopeWindow(t *testing.T) {
	dir := t.TempDir()
	w, err := tracestore.Create(dir, tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracerSink(w)
	for _, scope := range []string{"cell/a", "cell/b", "other"} {
		sc := tr.WithScope(scope)
		sp := sc.StartEpoch(obs.Event{Step: 1, Clique: 0, Node: -1})
		sp.EndEpoch(obs.Event{Step: 1, Clique: 0, Node: -1, N: 0})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if c := run([]string{"-trace", dir, "-scope", "cell", "-json", "-", "-q"}, strings.NewReader(""), &out, &errb); c != 0 {
		t.Fatalf("exit %d (stderr: %s)", c, errb.String())
	}
	var rep struct {
		Scopes []struct {
			Scope string `json:"scope"`
		} `json:"scopes"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Scopes) != 2 || rep.Scopes[0].Scope != "cell/a" || rep.Scopes[1].Scope != "cell/b" {
		t.Fatalf("scope window audited %+v, want cell/a and cell/b only", rep.Scopes)
	}
}

func TestNoEventsMatchedWindow(t *testing.T) {
	dir := writeCleanStore(t, 5, 8)
	code, _, stderr := runKenaudit(t, "", "-trace", dir, "-scope", "nope", "-q")
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "no events matched") {
		t.Fatalf("stderr %q does not report the empty window", stderr)
	}
}
