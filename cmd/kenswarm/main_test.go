package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSwarmSelfhostVerify is the end-to-end acceptance run in miniature:
// an in-process daemon, concurrent tenants over two specs, and the
// bit-identical + ±ε verification pass.
func TestSwarmSelfhostVerify(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	code := run([]string{
		"-selfhost", "-tenants", "6", "-specs", "2", "-steps", "40",
		"-verify", "-baseline-out", dir,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "kenswarm: verified 6 tenants") {
		t.Fatalf("verification line missing:\n%s", out.String())
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_sinkd.json"))
	if err != nil {
		t.Fatal(err)
	}
	var b sinkdBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Benchmark != "sinkd" || b.Unit != "frames/sec" {
		t.Fatalf("baseline header: %+v", b)
	}
	if b.PerSec <= 0 || b.SessionsPerSec <= 0 || b.Count != 6*40 {
		t.Fatalf("baseline figures: %+v", b)
	}
}

func TestSwarmArgErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	// No daemon to connect to and no -selfhost: a usage error, not a hang.
	if code := run([]string{"-tenants", "2"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "-connect is required") {
		t.Fatalf("stderr: %q", errw.String())
	}
}
