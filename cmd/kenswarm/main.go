// Command kenswarm is the load generator and correctness harness for
// kensinkd: it opens N concurrent tenant sessions against one daemon
// (M distinct deployment specs, tenants round-robined across them),
// streams every tenant's report frames, and measures sessions/sec and
// frames/sec. With -verify it also proves zero cross-tenant divergence:
// each tenant's /v1/query answer must be bit-identical to a local
// single-tenant reference replica built from the same spec and fed the
// same frames (the lock-step property a standalone kensim/kensink run at
// that spec computes), and within ±ε of the ground truth rows.
//
//	kenswarm -selfhost -tenants 64 -specs 4 -steps 200 -verify
//	kenswarm -connect 127.0.0.1:7070 -http http://127.0.0.1:7071 -tenants 16 -verify
//	kenswarm -selfhost -tenants 16 -steps 200 -baseline-out .   # BENCH_sinkd.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/sinkd"
	"ken/internal/stream"
	"ken/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	connect     string
	httpBase    string
	selfhost    bool
	tenants     int
	specs       int
	wait        time.Duration
	verify      bool
	baselineOut string
	params      deploy.Params
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kenswarm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	o.params.Register(fs)
	fs.StringVar(&o.connect, "connect", "", "kensinkd session address (empty with -selfhost)")
	fs.StringVar(&o.httpBase, "http", "", "kensinkd query API base URL, e.g. http://127.0.0.1:7071 (needed by -verify unless -selfhost)")
	fs.BoolVar(&o.selfhost, "selfhost", false, "run an in-process kensinkd on ephemeral ports instead of connecting out")
	fs.IntVar(&o.tenants, "tenants", 8, "concurrent tenant sessions to open")
	fs.IntVar(&o.specs, "specs", 1, "distinct deployment specs (seeds -seed .. -seed+specs-1), tenants round-robined across them")
	fs.IntVar(&o.params.TestSteps, "steps", 120, "steps each tenant streams")
	fs.IntVar(&o.params.HeartbeatEvery, "heartbeat", 24, "heartbeat frame interval (0 disables)")
	fs.DurationVar(&o.wait, "wait", 5*time.Second, "retry window for the first connection (lets the daemon finish starting)")
	fs.BoolVar(&o.verify, "verify", false, "after streaming, check every tenant's /v1/query answer bit-identical to a local reference replica and within ±ε of truth")
	fs.StringVar(&o.baselineOut, "baseline-out", "", "write the BENCH_sinkd.json throughput yardstick into this directory")
	var logFlags obs.LogFlags
	logFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := logFlags.Setup(nil); err != nil {
		fmt.Fprintf(stderr, "kenswarm: %v\n", err)
		return 2
	}
	if err := o.run(stdout); err != nil {
		slog.Error("swarm failed", "err", err)
		fmt.Fprintf(stderr, "kenswarm: %v\n", err)
		return 1
	}
	return 0
}

// swarmTenant is one session: its spec, source endpoint, test rows and —
// under -verify — the local reference replica fed the same frames.
type swarmTenant struct {
	name string
	spec deploy.Params
	src  *stream.Source
	ref  *stream.Replica
	test [][]float64
}

func (o options) run(stdout io.Writer) error {
	if o.tenants <= 0 {
		return fmt.Errorf("kenswarm: -tenants must be positive, got %d", o.tenants)
	}
	if o.specs <= 0 || o.specs > o.tenants {
		o.specs = min(max(o.specs, 1), o.tenants)
	}
	if err := o.params.Validate(); err != nil {
		return err
	}

	if o.selfhost {
		stopDaemon, sessionAddr, httpBase, err := selfhost()
		if err != nil {
			return err
		}
		defer stopDaemon()
		o.connect, o.httpBase = sessionAddr, httpBase
		slog.Info("selfhosted kensinkd up", "listen", sessionAddr, "http", httpBase)
	}
	if o.connect == "" {
		return fmt.Errorf("kenswarm: -connect is required without -selfhost")
	}
	if o.verify && o.httpBase == "" {
		return fmt.Errorf("kenswarm: -verify needs -http (the daemon's query API base URL)")
	}

	// Build the distinct specs once; tenants round-robin across them.
	deps := make([]*deploy.Deployment, o.specs)
	specs := make([]deploy.Params, o.specs)
	for s := 0; s < o.specs; s++ {
		p := o.params
		p.Seed = o.params.Seed + int64(s)
		dep, err := deploy.Build(p)
		if err != nil {
			return fmt.Errorf("building spec %s: %w", p.ReplicaKey(), err)
		}
		deps[s], specs[s] = dep, p
	}
	tenants := make([]*swarmTenant, o.tenants)
	for i := range tenants {
		s := i % o.specs
		src, err := stream.NewSource(deps[s].Config)
		if err != nil {
			return err
		}
		tn := &swarmTenant{
			name: fmt.Sprintf("swarm-%d", i),
			spec: specs[s],
			src:  src,
			test: deps[s].Test,
		}
		if o.verify {
			if tn.ref, err = stream.NewReplica(deps[s].Config); err != nil {
				return err
			}
		}
		tenants[i] = tn
	}
	slog.Info("swarm ready", "tenants", o.tenants, "specs", o.specs,
		"steps", o.params.TestSteps)

	// Phase 1 — sessions: dial + handshake every tenant concurrently.
	conns := make([]net.Conn, o.tenants)
	defer func() {
		for _, c := range conns {
			if c != nil {
				_ = c.Close()
			}
		}
	}()
	start := time.Now()
	errs := make(chan error, o.tenants)
	var mu sync.Mutex
	for i, tn := range tenants {
		go func(i int, tn *swarmTenant) {
			conn, err := dialRetry(o.connect, o.wait)
			if err == nil {
				_, err = stream.Handshake(conn, wire.Hello{
					Tenant: tn.name, Spec: tn.spec.EncodeSpec(),
				})
			}
			if err != nil {
				errs <- fmt.Errorf("tenant %s: %w", tn.name, err)
				return
			}
			mu.Lock()
			conns[i] = conn
			mu.Unlock()
			errs <- nil
		}(i, tn)
	}
	for range tenants {
		if err := <-errs; err != nil {
			return err
		}
	}
	sessionsSec := time.Since(start).Seconds()
	slog.Info("sessions open", "tenants", o.tenants,
		"elapsed", fmt.Sprintf("%.3fs", sessionsSec))

	// Phase 2 — streaming: every tenant pumps its frames concurrently,
	// mirroring each frame into its local reference replica when
	// verifying.
	start = time.Now()
	frames := 0
	for i, tn := range tenants {
		go func(conn net.Conn, tn *swarmTenant) {
			n, err := pump(conn, tn)
			mu.Lock()
			frames += n
			mu.Unlock()
			if err != nil {
				errs <- fmt.Errorf("tenant %s: %w", tn.name, err)
				return
			}
			errs <- nil
		}(conns[i], tn)
	}
	for range tenants {
		if err := <-errs; err != nil {
			return err
		}
	}
	streamSec := time.Since(start).Seconds()
	for i, c := range conns {
		_ = c.Close() // half-close: daemon sees EOF, tenant turns "closed"
		conns[i] = nil
	}

	sessPerSec := float64(o.tenants) / sessionsSec
	framesPerSec := float64(frames) / streamSec
	fmt.Fprintf(stdout, "kenswarm: %d tenants × %d steps over %d specs: %.0f sessions/sec, %.0f frames/sec\n",
		o.tenants, o.params.TestSteps, o.specs, sessPerSec, framesPerSec)

	if o.verify {
		if err := verifyAnswers(o.httpBase, tenants); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "kenswarm: verified %d tenants: answers bit-identical to the single-tenant reference and within ±ε of truth\n",
			len(tenants))
	}
	if o.baselineOut != "" {
		if err := writeBaseline(o, sessPerSec, framesPerSec, frames, streamSec); err != nil {
			return err
		}
	}
	return nil
}

// dialRetry dials until the window closes — the daemon may still be
// binding its listener when the swarm starts (sinkd-smoke races them).
func dialRetry(addr string, wait time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(wait)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// pump streams the tenant's test rows, mirroring frames into the local
// reference replica when verifying, and surfaces a typed shed reject.
func pump(conn net.Conn, tn *swarmTenant) (int, error) {
	frames := 0
	for _, row := range tn.test {
		f, err := tn.src.Collect(row)
		if err != nil {
			return frames, err
		}
		if err := stream.WriteFrame(conn, f, tn.src.Resolution()); err != nil {
			if rej := pendingReject(conn); rej != nil {
				return frames, fmt.Errorf("shed by the sink: %w", rej)
			}
			return frames, err
		}
		if tn.ref != nil {
			if err := tn.ref.Apply(f); err != nil {
				return frames, err
			}
		}
		frames++
	}
	return frames, nil
}

// pendingReject drains a waiting session frame after a write error, so a
// shed tenant reports the sink's typed reason instead of a raw EPIPE.
func pendingReject(conn net.Conn) error {
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return nil
	}
	for {
		s, err := stream.ReadSession(conn)
		if err != nil {
			return nil
		}
		if s.Reject != nil {
			return s.Reject.Err()
		}
	}
}

// verifyAnswers fetches every tenant's /v1/query answer and requires it
// bit-identical to the local reference replica (fed exactly the frames
// the tenant sent) and within ±ε of the final ground-truth row.
func verifyAnswers(httpBase string, tenants []*swarmTenant) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, tn := range tenants {
		want := tn.ref.Answer()
		// The daemon applies asynchronously: after the stream closes its
		// applier may still be draining the frame queue, so poll until
		// the step counts meet before comparing answers.
		var resp sinkd.QueryResponse
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := getJSON(client, fmt.Sprintf("%s/v1/query?tenant=%s", httpBase, tn.name), &resp); err != nil {
				return fmt.Errorf("tenant %s: %w", tn.name, err)
			}
			if resp.Answer.Step >= want.Step || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if resp.Answer.Step != want.Step {
			return fmt.Errorf("tenant %s: daemon applied %d frames, reference %d",
				tn.name, resp.Answer.Step, want.Step)
		}
		if len(resp.Answer.Estimates) != len(want.Estimates) {
			return fmt.Errorf("tenant %s: answer dim %d, want %d",
				tn.name, len(resp.Answer.Estimates), len(want.Estimates))
		}
		truth := tn.test[len(tn.test)-1]
		for i, got := range resp.Answer.Estimates {
			// Bit-identical: JSON float64 round-trips exactly, so the
			// daemon's replica diverging by one ULP is detected.
			if math.Float64bits(got) != math.Float64bits(want.Estimates[i]) {
				return fmt.Errorf("tenant %s attr %d: daemon answer %v diverges from reference %v",
					tn.name, i, got, want.Estimates[i])
			}
			if d := math.Abs(got - truth[i]); d > want.Eps[i]+1e-9 {
				return fmt.Errorf("tenant %s attr %d: answer %v misses truth %v beyond ε=%v",
					tn.name, i, got, truth[i], want.Eps[i])
			}
		}
	}
	return nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }() // response body close error carries no data
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// selfhost starts an in-process daemon on ephemeral ports.
func selfhost() (stop func(), sessionAddr, httpBase string, err error) {
	d := sinkd.New(sinkd.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", "", err
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = ln.Close()
		return nil, "", "", err
	}
	httpSrv := &http.Server{Handler: d.Handler()}
	go func() { _ = d.Serve(ln) }()
	go func() { _ = httpSrv.Serve(httpLn) }()
	stop = func() {
		_ = ln.Close()
		_ = httpSrv.Close()
		d.Close()
	}
	return stop, ln.Addr().String(), "http://" + httpLn.Addr().String(), nil
}

// sinkdBaseline mirrors kenbench's BENCH_*.json schema with the extra
// sessions/sec figure the daemon adds.
type sinkdBaseline struct {
	Benchmark      string  `json:"benchmark"`
	Unit           string  `json:"unit"`
	PerSec         float64 `json:"per_sec"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	Count          int     `json:"count"`
	Seconds        float64 `json:"seconds"`
	Config         string  `json:"config"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	GoVersion      string  `json:"go_version"`
}

func writeBaseline(o options, sessPerSec, framesPerSec float64, frames int, seconds float64) error {
	if err := os.MkdirAll(o.baselineOut, 0o755); err != nil {
		return err
	}
	res := sinkdBaseline{
		Benchmark: "sinkd", Unit: "frames/sec",
		PerSec: framesPerSec, SessionsPerSec: sessPerSec,
		Count: frames, Seconds: seconds,
		Config: fmt.Sprintf("%d tenants × %d steps over %d specs (%s), selfhost=%v",
			o.tenants, o.params.TestSteps, o.specs, o.params.ReplicaKey(), o.selfhost),
		GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
	}
	path := filepath.Join(o.baselineOut, "BENCH_sinkd.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	slog.Info("baseline written", "path", path,
		"throughput", fmt.Sprintf("%.0f frames/sec, %.0f sessions/sec", framesPerSec, sessPerSec))
	return nil
}
