// Command kensource is the sensor-network endpoint of the streaming Ken
// system: it builds the source replica from its deployment flags,
// connects to a sink (kensink or kensinkd), and opens the session with a
// HELLO frame carrying the serialized deployment spec — the sink builds
// its replica from that spec, so the two processes no longer have to be
// launched with byte-identical flags. After the typed ACCEPT it streams
// one report frame per sampling step over TCP.
//
//	kensinkd  -listen 127.0.0.1:7070 &
//	kensource -connect 127.0.0.1:7070 -tenant garden-a -seed 1 -steps 500
//	kensource -connect 127.0.0.1:7070 -tenant garden-b -seed 7 -steps 500
//
// A sink that speaks another protocol version answers with a typed
// version reject (wire.ErrVersionMismatch names both versions); a pinned
// or overloaded sink rejects the spec (wire.ErrSpecRejected carries the
// code and reason). With -obs-addr the source serves live /metrics
// (frames/values sent, heartbeats) plus /debug/pprof while streaming.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"time"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/stream"
	"ken/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options carries the parsed flags; run stays a thin parser so the whole
// streaming path is testable without a process boundary.
type options struct {
	connect string
	tenant  string
	params  deploy.Params
	ob      *obs.Observer
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kensource", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	o.params.Register(fs)
	fs.StringVar(&o.connect, "connect", "127.0.0.1:7070", "sink address (kensink or kensinkd)")
	fs.StringVar(&o.tenant, "tenant", "", "tenant name offered in the handshake (empty = sink assigns one)")
	fs.IntVar(&o.params.TestSteps, "steps", 500, "steps to stream")
	fs.IntVar(&o.params.HeartbeatEvery, "heartbeat", 24, "heartbeat frame interval (0 disables)")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	var logFlags obs.LogFlags
	logFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := logFlags.Setup(nil); err != nil {
		fmt.Fprintf(stderr, "kensource: %v\n", err)
		return 2
	}
	o.ob = &obs.Observer{Reg: obs.NewRegistry()}
	if *obsAddr != "" {
		_, bound, err := obs.Serve(*obsAddr, o.ob.Reg)
		if err != nil {
			slog.Error("observability endpoint", "err", err)
			return 1
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	if err := o.run(stdout); err != nil {
		slog.Error("run failed", "err", err)
		fmt.Fprintf(stderr, "kensource: %v\n", err)
		return 1
	}
	return 0
}

func (o options) run(stdout io.Writer) error {
	if err := o.params.Validate(); err != nil {
		return err
	}
	dep, err := deploy.Build(o.params)
	if err != nil {
		return err
	}
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		return err
	}
	src.Instrument(o.ob)

	conn, err := net.Dial("tcp", o.connect)
	if err != nil {
		return err
	}
	defer conn.Close()

	acc, err := stream.Handshake(conn, wire.Hello{
		Tenant: o.tenant,
		Spec:   o.params.EncodeSpec(),
	})
	if err != nil {
		return fmt.Errorf("handshake with %s: %w", o.connect, err)
	}
	slog.Info("session accepted", "addr", o.connect, "tenant", acc.Tenant,
		"steps", len(dep.Test), "spec", o.params.ReplicaKey(),
		"partition", dep.Partition.String())

	values := 0
	for _, row := range dep.Test {
		f, err := src.Collect(row)
		if err != nil {
			return err
		}
		values += len(f.Attrs)
		if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
			// A mid-stream write failure is usually the sink shedding us:
			// surface its typed reject when one is waiting.
			if rej := pendingReject(conn); rej != nil {
				return fmt.Errorf("sink dropped the session: %w", rej)
			}
			return err
		}
	}
	total := len(dep.Test) * dep.N
	fmt.Fprintf(stdout, "kensource: tenant %s sent %d of %d values (%.1f%%)\n",
		acc.Tenant, values, total, 100*float64(values)/float64(total))
	return nil
}

// pendingReject drains a waiting session frame after a write error, so a
// shed tenant reports the sink's typed reason instead of a raw EPIPE.
func pendingReject(conn net.Conn) error {
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return nil
	}
	for {
		s, err := stream.ReadSession(conn)
		if err != nil {
			return nil
		}
		if s.Reject != nil {
			return s.Reject.Err()
		}
	}
}
