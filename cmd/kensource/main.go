// Command kensource is the sensor-network endpoint of the streaming Ken
// system: it builds the source replica from the shared deployment
// parameters, connects to a kensink, and streams one report frame per
// sampling step over TCP.
//
// Both binaries must run with the same -dataset/-seed/-train/-k/-eps so
// the replicas match:
//
//	kensink   -listen 127.0.0.1:7070 -dataset garden -seed 1 -k 2
//	kensource -connect 127.0.0.1:7070 -dataset garden -seed 1 -k 2 -steps 500
//
// With -obs-addr the source serves live /metrics (frames/values sent,
// heartbeats) plus /debug/pprof while streaming.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/stream"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:7070", "kensink address")
	dataset := flag.String("dataset", "garden", "deployment: garden or lab")
	seed := flag.Int64("seed", 1, "shared deployment seed")
	train := flag.Int("train", 100, "shared training steps")
	steps := flag.Int("steps", 500, "steps to stream")
	k := flag.Int("k", 2, "shared max clique size")
	eps := flag.Float64("eps", 0, "shared error bound override (0 = attribute default)")
	heartbeat := flag.Int("heartbeat", 24, "heartbeat frame interval (0 disables)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	var logFlags obs.LogFlags
	logFlags.Register(flag.CommandLine)
	flag.Parse()

	if _, err := logFlags.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "kensource: %v\n", err)
		os.Exit(2)
	}
	ob := &obs.Observer{Reg: obs.NewRegistry()}
	if *obsAddr != "" {
		_, bound, err := obs.Serve(*obsAddr, ob.Reg)
		if err != nil {
			slog.Error("observability endpoint", "err", err)
			os.Exit(1)
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	if err := run(*connect, *dataset, *seed, *train, *steps, *k, *eps, *heartbeat, ob); err != nil {
		slog.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(connect, dataset string, seed int64, train, steps, k int, eps float64, heartbeat int, ob *obs.Observer) error {
	dep, err := deploy.Build(deploy.Params{
		Dataset: dataset, Seed: seed, TrainSteps: train, TestSteps: steps,
		K: k, Epsilon: eps, HeartbeatEvery: heartbeat,
	})
	if err != nil {
		return err
	}
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		return err
	}
	src.Instrument(ob)

	conn, err := net.Dial("tcp", connect)
	if err != nil {
		return err
	}
	defer conn.Close()
	slog.Info("connected", "addr", connect, "steps", len(dep.Test),
		"dataset", dataset, "partition", dep.Partition.String())

	values := 0
	for _, row := range dep.Test {
		f, err := src.Collect(row)
		if err != nil {
			return err
		}
		values += len(f.Attrs)
		if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
			return err
		}
	}
	total := len(dep.Test) * dep.N
	slog.Info("done", "values_sent", values, "values_total", total,
		"fraction", fmt.Sprintf("%.1f%%", 100*float64(values)/float64(total)))
	return nil
}
