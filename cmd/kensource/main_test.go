package main

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"ken/internal/deploy"
	"ken/internal/stream"
	"ken/internal/wire"
)

func TestRunFlagError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// fakeSink accepts one connection, decodes the HELLO spec, builds the
// replica it describes and applies the stream — the sink side of the
// session contract, minus any daemon machinery.
func fakeSink(t *testing.T) (string, <-chan *stream.Replica) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	out := make(chan *stream.Replica, 1)
	go func() {
		defer close(out)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		h, err := stream.ReadHello(conn)
		if err != nil {
			t.Errorf("fake sink ReadHello: %v", err)
			return
		}
		p, err := deploy.DecodeSpec(h.Spec)
		if err != nil {
			t.Errorf("fake sink DecodeSpec: %v", err)
			return
		}
		dep, err := deploy.Build(p)
		if err != nil {
			t.Errorf("fake sink Build: %v", err)
			return
		}
		replica, err := stream.NewReplica(dep.Config)
		if err != nil {
			t.Errorf("fake sink NewReplica: %v", err)
			return
		}
		if err := stream.WriteAccept(conn, wire.Accept{Tenant: h.Tenant}); err != nil {
			t.Errorf("fake sink WriteAccept: %v", err)
			return
		}
		if err := replica.Serve(conn); err != nil {
			t.Errorf("fake sink Serve: %v", err)
			return
		}
		out <- replica
	}()
	return ln.Addr().String(), out
}

func TestSourceStreamsSpec(t *testing.T) {
	addr, sunk := fakeSink(t)
	o := options{
		connect: addr,
		tenant:  "ct",
		params:  deploy.Params{Dataset: "garden", Seed: 2, TestSteps: 15, HeartbeatEvery: 5},
	}
	var out bytes.Buffer
	if err := o.run(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kensource: tenant ct sent") {
		t.Fatalf("stdout: %q", out.String())
	}
	replica := <-sunk
	if replica == nil {
		t.Fatal("fake sink never finished")
	}
	if replica.Steps() != 15 {
		t.Fatalf("sink applied %d steps, want 15", replica.Steps())
	}
	if replica.Heartbeats() == 0 {
		t.Fatal("heartbeat frames never arrived")
	}
}

// TestSourceSurfacesTypedReject: a rejecting sink maps onto the typed
// wire errors, and the CLI exit path prints "spec rejected" and fails.
func TestSourceSurfacesTypedReject(t *testing.T) {
	reject := func(t *testing.T, code wire.RejectCode) string {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ln.Close() })
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			if _, err := stream.ReadHello(conn); err != nil {
				return
			}
			_ = stream.WriteReject(conn, wire.Reject{Code: code, Reason: "test says no"})
		}()
		return ln.Addr().String()
	}

	o := options{connect: reject(t, wire.RejectSpecMismatch), params: deploy.Params{TestSteps: 5}}
	err := o.run(io.Discard)
	if !errors.Is(err, wire.ErrSpecRejected) {
		t.Fatalf("got %v, want ErrSpecRejected", err)
	}

	o.connect = reject(t, wire.RejectVersion)
	if err := o.run(io.Discard); !errors.Is(err, wire.ErrVersionMismatch) {
		t.Fatalf("got %v, want ErrVersionMismatch", err)
	}

	// Through the CLI entry point: nonzero exit, "spec rejected" on stderr
	// (the contract the sinkd-smoke target greps for).
	var out, errw bytes.Buffer
	code := run([]string{"-connect", reject(t, wire.RejectSpecMismatch), "-steps", "5"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "spec rejected") {
		t.Fatalf("stderr: %q", errw.String())
	}
}
