// Command kennet runs distributed data-collection programs on the
// packet-level network simulator: hop-by-hop forwarding, per-byte radio
// energy, batteries, loss and route repair. It reports communication,
// energy, lifetime and answer quality — the deployment-facing counterpart
// of kensim's protocol-level accounting.
//
// Usage:
//
//	kennet -program ken -steps 2160 -battery 0.35
//	kennet -program tinydb -loss 0.1
//	kennet -program avg -dataset garden -topology chain
//	kennet -program ken -loss 0.2 -arq-retries 3 -heartbeat 10 -failure-alpha 0.01
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/obs"
	"ken/internal/simnet"
	"ken/internal/trace"
)

func main() {
	program := flag.String("program", "ken", "node program: ken, tinydb or avg")
	dataset := flag.String("dataset", "garden", "deployment: garden or lab")
	topology := flag.String("topology", "chain", "topology: chain (multi-hop) or star (single-hop)")
	seed := flag.Int64("seed", 1, "generator seed")
	train := flag.Int("train", 100, "training steps (hours)")
	steps := flag.Int("steps", 2160, "epochs to simulate")
	battery := flag.Float64("battery", 0.35, "battery Joules per node")
	loss := flag.Float64("loss", 0, "per-hop message loss probability")
	k := flag.Int("k", 2, "clique size for the ken program (adjacent pairs when 2)")
	arqRetries := flag.Int("arq-retries", 0, "ARQ retransmissions per message (0 = no acks, fire and forget)")
	retryBudget := flag.Int("retry-budget", 0, "backoff slots spendable per epoch across all messages (0 = unlimited)")
	heartbeat := flag.Int("heartbeat", 0, "full-value resync every N epochs for the ken program (0 = off)")
	failureAlpha := flag.Float64("failure-alpha", 0, "per-clique failure detection level at the base (0 = off)")
	var of obs.CmdFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	ob, cleanup, err := of.Setup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kennet: %v\n", err)
		os.Exit(2)
	}
	err = run(runConfig{
		program: *program, dataset: *dataset, topology: *topology,
		seed: *seed, trainN: *train, steps: *steps,
		battery: *battery, loss: *loss, k: *k,
		arqRetries: *arqRetries, retryBudget: *retryBudget,
		heartbeat: *heartbeat, failureAlpha: *failureAlpha,
	}, ob)
	cleanup()
	if err != nil {
		slog.Error("run failed", "err", err)
		os.Exit(1)
	}
}

// runConfig bundles the simulation knobs so run stays readable.
type runConfig struct {
	program, dataset, topology string
	seed                       int64
	trainN, steps              int
	battery, loss              float64
	k                          int
	arqRetries, retryBudget    int
	heartbeat                  int
	failureAlpha               float64
}

func run(rc runConfig, ob *obs.Observer) error {
	program, dataset, topology := rc.program, rc.dataset, rc.topology
	seed, trainN, steps := rc.seed, rc.trainN, rc.steps
	battery, loss, k := rc.battery, rc.loss, rc.k
	var (
		tr  *trace.Trace
		err error
	)
	switch dataset {
	case "garden":
		tr, err = trace.GenerateGarden(seed, trainN+steps)
	case "lab":
		tr, err = trace.GenerateLab(seed, trainN+steps)
	default:
		return fmt.Errorf("unknown dataset %q", dataset)
	}
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainN], rows[trainN:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = trace.Temperature.DefaultEpsilon()
	}

	var links []network.Link
	switch topology {
	case "chain":
		for i := 0; i < n; i++ {
			links = append(links, network.Link{U: i, V: i + 1, Cost: 1})
		}
	case "star":
		for i := 0; i < n; i++ {
			links = append(links, network.Link{U: i, V: n, Cost: 1})
			for j := i + 1; j < n; j++ {
				links = append(links, network.Link{U: i, V: j, Cost: 1})
			}
		}
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}
	top, err := network.New(n, links)
	if err != nil {
		return err
	}

	radio := simnet.DefaultRadio()
	radio.BatteryJ = battery
	radio.IdlePerEpoch = 2e-5
	radio.LossRate = loss
	radio.ARQ.MaxRetries = rc.arqRetries
	radio.ARQ.RetryBudget = rc.retryBudget
	net, err := simnet.New(top, radio, seed)
	if err != nil {
		return err
	}
	net.Instrument(ob)

	var prog simnet.Program
	switch program {
	case "tinydb":
		prog, err = simnet.NewDistributedTinyDB(net, eps)
	case "avg":
		prog, err = simnet.NewDistributedAverage(net, train, eps, model.FitConfig{Period: 24})
	case "ken":
		part := &cliques.Partition{}
		for i := 0; i < n; i += k {
			hi := i + k
			if hi > n {
				hi = n
			}
			members := make([]int, 0, k)
			for j := i; j < hi; j++ {
				members = append(members, j)
			}
			// Root at the member nearest the base (highest index on the
			// chain).
			part.Cliques = append(part.Cliques, cliques.Clique{
				Members: members, Root: members[len(members)-1]})
		}
		prog, err = simnet.NewDistributedKenConfig(net, part, train, eps, model.FitConfig{Period: 24},
			simnet.KenNetConfig{HeartbeatEvery: rc.heartbeat, FailureAlpha: rc.failureAlpha})
	default:
		return fmt.Errorf("unknown program %q", program)
	}
	if err != nil {
		return err
	}

	delivered, violations, staleReadings := 0, 0, 0
	firstDeath := -1
	for t, row := range test {
		res, err := prog.Epoch(row)
		if err != nil {
			return err
		}
		delivered += res.ValuesDelivered
		violations += res.Violations
		for _, s := range res.Stale {
			if s {
				staleReadings++
			}
		}
		if firstDeath < 0 && net.AliveCount() < n {
			firstDeath = t + 1
		}
	}
	st := net.Stats()

	fmt.Printf("program        %s on %s/%s (%d nodes, %d epochs)\n", program, dataset, topology, n, len(test))
	fmt.Printf("radio          battery %.3g J, loss %.0f%%\n", battery, 100*loss)
	if firstDeath > 0 {
		fmt.Printf("first death    epoch %d\n", firstDeath)
	} else {
		fmt.Printf("first death    none (all %d nodes alive)\n", net.AliveCount())
	}
	fmt.Printf("alive at end   %d/%d\n", net.AliveCount(), n)
	fmt.Printf("values at base %d of %d (%.1f%%)\n", delivered, len(test)*n,
		100*float64(delivered)/float64(len(test)*n))
	fmt.Printf("stale answers  %d of %d readings (%.2f%%)\n", violations, len(test)*n,
		100*float64(violations)/float64(len(test)*n))
	fmt.Printf("link messages  %d (%d bytes, %d lost, %d unroutable)\n",
		st.MessagesSent, st.BytesSent, st.DroppedLoss, st.DroppedNoPath)
	if rc.arqRetries > 0 {
		fmt.Printf("reliability    %d retransmissions, %d acks\n", st.Retransmits, st.Acks)
	}
	if rc.failureAlpha > 0 {
		fmt.Printf("suspected      %d readings flagged stale by the failure detector\n", staleReadings)
	}
	fmt.Printf("energy spent   %.3f J across the network\n", st.EnergySpent)
	return nil
}
