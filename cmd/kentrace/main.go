// Command kentrace generates synthetic deployment traces and dumps them as
// CSV (one attribute at a time), or prints a summary. The synthetic Lab and
// Garden generators substitute for the paper's real traces (Intel Research
// Lab; UC Berkeley Botanical Garden), which are not redistributable here —
// see DESIGN.md for the substitution rationale.
//
// Usage:
//
//	kentrace -dataset garden -steps 2000 > garden_temp.csv
//	kentrace -dataset lab -attr humidity -steps 1000 > lab_hum.csv
//	kentrace -dataset garden -summary
//	kentrace -dataset lab -diagnose        # model-selection diagnostics
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"ken/internal/obs"
	"ken/internal/stats"
	"ken/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "garden", "deployment: garden or lab")
	attr := flag.String("attr", "temperature", "attribute: temperature, humidity or voltage")
	steps := flag.Int("steps", 1000, "number of hourly steps to generate")
	seed := flag.Int64("seed", 1, "generator seed")
	summary := flag.Bool("summary", false, "print a summary instead of CSV")
	diagnose := flag.Bool("diagnose", false, "print model-selection diagnostics instead of CSV")
	var of obs.CmdFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	// kentrace emits no protocol events of its own, but it carries the
	// uniform observability flag block: -obs-addr serves generator metrics
	// and -trace-out writes a valid (header-only) trace.
	_, cleanup, err := of.Setup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kentrace: %v\n", err)
		os.Exit(2)
	}
	defer cleanup()

	var tr *trace.Trace
	switch *dataset {
	case "garden":
		tr, err = trace.GenerateGarden(*seed, *steps)
	case "lab":
		tr, err = trace.GenerateLab(*seed, *steps)
	default:
		slog.Error("unknown dataset (garden or lab)", "dataset", *dataset)
		os.Exit(2)
	}
	if err != nil {
		slog.Error("trace generation failed", "err", err)
		os.Exit(1)
	}

	var a trace.Attribute
	switch *attr {
	case "temperature":
		a = trace.Temperature
	case "humidity":
		a = trace.Humidity
	case "voltage":
		a = trace.Voltage
	default:
		slog.Error("unknown attribute", "attr", *attr)
		os.Exit(2)
	}

	if *summary {
		printSummary(tr)
		return
	}
	if *diagnose {
		if err := printDiagnostics(tr, a); err != nil {
			slog.Error("diagnostics failed", "err", err)
			os.Exit(1)
		}
		return
	}
	if err := tr.WriteCSV(os.Stdout, a); err != nil {
		slog.Error("CSV write failed", "err", err)
		os.Exit(1)
	}
}

// printDiagnostics reports the statistics Ken's model selection rests on:
// temporal autocorrelation (favours dynamic models over caching), seasonal
// strength (favours diurnal profiles), one-step drift (predicts caching
// performance) and the spatial correlation/distance relation (predicts the
// payoff of larger cliques).
func printDiagnostics(tr *trace.Trace, a trace.Attribute) error {
	rows, err := tr.Rows(a)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	fmt.Printf("diagnostics for %s/%v (%d nodes, %d steps)\n\n", tr.Deployment.Name, a, n, len(rows))

	var ac1, seas, drift float64
	for i := 0; i < n; i++ {
		col, err := tr.Column(a, i)
		if err != nil {
			return err
		}
		if v, err := stats.Autocorrelation(col, 1); err == nil {
			ac1 += v
		}
		if v, err := stats.SeasonalStrength(col, 24); err == nil {
			seas += v
		}
		if v, err := stats.MeanAbsDiff(col); err == nil {
			drift += v
		}
	}
	fmt.Printf("mean lag-1 autocorrelation : %.3f (high ⇒ temporal models beat caching)\n", ac1/float64(n))
	fmt.Printf("mean seasonal strength (24): %.3f (high ⇒ diurnal profile worth fitting)\n", seas/float64(n))
	fmt.Printf("mean one-step |Δx|         : %.3f (caching reports ≈ min(1, this/ε))\n", drift/float64(n))

	// Deseasonalise before correlating: the shared diurnal cycle would
	// otherwise dominate and hide the distance-decaying component that
	// clique selection exploits.
	res := make([][]float64, len(rows))
	for t := range res {
		res[t] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		col, err := tr.Column(a, i)
		if err != nil {
			return err
		}
		var profile [24]float64
		var count [24]int
		for t, v := range col {
			profile[t%24] += v
			count[t%24]++
		}
		for h := range profile {
			if count[h] > 0 {
				profile[h] /= float64(count[h])
			}
		}
		for t, v := range col {
			res[t][i] = v - profile[t%24]
		}
	}
	corr, err := stats.CorrelationMatrix(res)
	if err != nil {
		return err
	}
	// Bucket pairwise correlation by inter-node distance.
	type bucket struct {
		sum float64
		n   int
	}
	buckets := map[int]*bucket{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := int(tr.Deployment.Nodes[i].Distance(tr.Deployment.Nodes[j]) / 5)
			b := buckets[d]
			if b == nil {
				b = &bucket{}
				buckets[d] = b
			}
			b.sum += corr[i][j]
			b.n++
		}
	}
	fmt.Printf("\ndeseasonalised spatial correlation by distance (5 m buckets):\n")
	for d := 0; d < 20; d++ {
		if b, ok := buckets[d]; ok {
			fmt.Printf("  %2d-%2d m: %.3f  (%d pairs)\n", d*5, d*5+5, b.sum/float64(b.n), b.n)
		}
	}
	fmt.Printf("\nsteep decay ⇒ small local cliques suffice; flat ⇒ larger cliques keep paying\n")
	return nil
}

func printSummary(tr *trace.Trace) {
	fmt.Printf("deployment: %s (%d nodes), %d steps of %.0f minutes\n",
		tr.Deployment.Name, tr.Deployment.N(), tr.Steps(), tr.StepMinutes)
	for _, a := range trace.Attributes {
		rows, err := tr.Rows(a)
		if err != nil {
			continue
		}
		min, max, sum, count := rows[0][0], rows[0][0], 0.0, 0
		for _, row := range rows {
			for _, v := range row {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
				sum += v
				count++
			}
		}
		fmt.Printf("  %-12s min %8.3f  max %8.3f  mean %8.3f  (default ε %.2g)\n",
			a, min, max, sum/float64(count), a.DefaultEpsilon())
	}
}
