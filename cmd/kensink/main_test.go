package main

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"ken/internal/deploy"
	"ken/internal/stream"
	"ken/internal/wire"
)

func TestRunFlagError(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "-bogus") {
		t.Fatalf("stderr: %q", errw.String())
	}
}

// startSink runs the sink on an ephemeral port and returns its address
// and result channel.
func startSink(t *testing.T, p deploy.Params, out io.Writer) (string, <-chan error) {
	t.Helper()
	ready := make(chan string, 1)
	o := options{listen: "127.0.0.1:0", params: p, every: 10, ready: ready}
	errCh := make(chan error, 1)
	go func() { errCh <- o.run(out) }()
	return <-ready, errCh
}

func TestSinkAcceptsMatchingSpec(t *testing.T) {
	p := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 30, HeartbeatEvery: 10}
	var out bytes.Buffer
	addr, errCh := startSink(t, p, &out)

	dep, err := deploy.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := stream.Handshake(conn, wire.Hello{Tenant: "cli", Spec: p.EncodeSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Tenant != "cli" {
		t.Fatalf("accept %+v", acc)
	}
	for _, row := range dep.Test {
		f, err := src.Collect(row)
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kensink: step 30 answer:") {
		t.Fatalf("final answer missing from stdout:\n%s", out.String())
	}
}

// TestSinkRejectsMismatchedSpec: the pinned single-tenant sink answers a
// different deployment with a typed spec-mismatch naming both specs, and
// both processes surface wire.ErrSpecRejected.
func TestSinkRejectsMismatchedSpec(t *testing.T) {
	pinned := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 10}
	addr, errCh := startSink(t, pinned, io.Discard)

	other := deploy.Params{Dataset: "garden", Seed: 99, TestSteps: 10}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = stream.Handshake(conn, wire.Hello{Tenant: "wrong", Spec: other.EncodeSpec()})
	if !errors.Is(err, wire.ErrSpecRejected) {
		t.Fatalf("client got %v, want ErrSpecRejected", err)
	}
	if !strings.Contains(err.Error(), pinned.ReplicaKey()) || !strings.Contains(err.Error(), other.ReplicaKey()) {
		t.Fatalf("reject %q does not name both specs", err)
	}
	sinkErr := <-errCh
	if !errors.Is(sinkErr, wire.ErrSpecRejected) {
		t.Fatalf("sink returned %v, want ErrSpecRejected", sinkErr)
	}
}

// TestSinkRejectsVersionSkew: a future-version HELLO gets a typed version
// reject on both ends.
func TestSinkRejectsVersionSkew(t *testing.T) {
	p := deploy.Params{Dataset: "garden", Seed: 1, TestSteps: 10}
	addr, errCh := startSink(t, p, io.Discard)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = stream.Handshake(conn, wire.Hello{Version: 9, Tenant: "v9", Spec: p.EncodeSpec()})
	if !errors.Is(err, wire.ErrVersionMismatch) {
		t.Fatalf("client got %v, want ErrVersionMismatch", err)
	}
	if sinkErr := <-errCh; !errors.Is(sinkErr, wire.ErrVersionMismatch) {
		t.Fatalf("sink returned %v, want ErrVersionMismatch", sinkErr)
	}
}
