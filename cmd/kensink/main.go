// Command kensink is the base-station endpoint of the streaming Ken
// system: it builds the sink replica from the shared deployment
// parameters, listens for one kensource connection, applies report frames
// as they arrive, and periodically prints the live SELECT * answer.
//
// Both binaries must run with the same -dataset/-seed/-train/-k/-eps so
// the replicas match (deploy.Build is deterministic):
//
//	kensink   -listen 127.0.0.1:7070 -dataset garden -seed 1 -k 2
//	kensource -connect 127.0.0.1:7070 -dataset garden -seed 1 -k 2 -steps 500
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"ken/internal/deploy"
	"ken/internal/stream"
	"ken/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to accept the source connection on")
	dataset := flag.String("dataset", "garden", "deployment: garden or lab")
	seed := flag.Int64("seed", 1, "shared deployment seed")
	train := flag.Int("train", 100, "shared training steps")
	k := flag.Int("k", 2, "shared max clique size")
	eps := flag.Float64("eps", 0, "shared error bound override (0 = attribute default)")
	every := flag.Int("print", 100, "print the live answer every N frames (0 = never)")
	flag.Parse()

	if err := run(*listen, *dataset, *seed, *train, *k, *eps, *every); err != nil {
		fmt.Fprintf(os.Stderr, "kensink: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, dataset string, seed int64, train, k int, eps float64, every int) error {
	dep, err := deploy.Build(deploy.Params{
		Dataset: dataset, Seed: seed, TrainSteps: train, K: k, Epsilon: eps,
	})
	if err != nil {
		return err
	}
	sink, err := stream.NewReplica(dep.Config)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("kensink: replica ready (%s, %d nodes, partition %s)\n",
		dataset, dep.N, dep.Partition)
	fmt.Printf("kensink: listening on %s\n", ln.Addr())

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("kensink: source connected from %s\n", conn.RemoteAddr())

	frames := 0
	for {
		f, err := stream.ReadFrame(conn, sink.Resolution())
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := sink.Apply(f); err != nil {
			return err
		}
		frames++
		if every > 0 && frames%every == 0 {
			printAnswer(sink, f)
		}
	}
	fmt.Printf("kensink: stream closed after %d frames (%d heartbeats)\n",
		sink.Steps(), sink.Heartbeats())
	printAnswer(sink, wire.Frame{Step: uint64(sink.Steps())})
	return nil
}

func printAnswer(sink *stream.Replica, f wire.Frame) {
	est := sink.Estimates()
	fmt.Printf("kensink: step %d answer:", f.Step)
	for i, v := range est {
		if i == 8 {
			fmt.Printf(" …")
			break
		}
		fmt.Printf(" %.2f", v)
	}
	fmt.Println()
}
