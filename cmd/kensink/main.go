// Command kensink is the base-station endpoint of the streaming Ken
// system: it builds the sink replica from the shared deployment
// parameters, listens for one kensource connection, applies report frames
// as they arrive, and periodically prints the live SELECT * answer.
//
// Both binaries must run with the same -dataset/-seed/-train/-k/-eps so
// the replicas match (deploy.Build is deterministic):
//
//	kensink   -listen 127.0.0.1:7070 -dataset garden -seed 1 -k 2
//	kensource -connect 127.0.0.1:7070 -dataset garden -seed 1 -k 2 -steps 500
//
// With -obs-addr the sink serves live /metrics (frames/values applied,
// heartbeats, replica step) plus /debug/pprof while streaming.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/stream"
	"ken/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "address to accept the source connection on")
	dataset := flag.String("dataset", "garden", "deployment: garden or lab")
	seed := flag.Int64("seed", 1, "shared deployment seed")
	train := flag.Int("train", 100, "shared training steps")
	k := flag.Int("k", 2, "shared max clique size")
	eps := flag.Float64("eps", 0, "shared error bound override (0 = attribute default)")
	every := flag.Int("print", 100, "print the live answer every N frames (0 = never)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	var logFlags obs.LogFlags
	logFlags.Register(flag.CommandLine)
	flag.Parse()

	if _, err := logFlags.Setup(nil); err != nil {
		fmt.Fprintf(os.Stderr, "kensink: %v\n", err)
		os.Exit(2)
	}
	ob := &obs.Observer{Reg: obs.NewRegistry()}
	if *obsAddr != "" {
		_, bound, err := obs.Serve(*obsAddr, ob.Reg)
		if err != nil {
			slog.Error("observability endpoint", "err", err)
			os.Exit(1)
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	if err := run(*listen, *dataset, *seed, *train, *k, *eps, *every, ob); err != nil {
		slog.Error("run failed", "err", err)
		os.Exit(1)
	}
}

func run(listen, dataset string, seed int64, train, k int, eps float64, every int, ob *obs.Observer) error {
	dep, err := deploy.Build(deploy.Params{
		Dataset: dataset, Seed: seed, TrainSteps: train, K: k, Epsilon: eps,
	})
	if err != nil {
		return err
	}
	sink, err := stream.NewReplica(dep.Config)
	if err != nil {
		return err
	}
	sink.Instrument(ob)

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	slog.Info("replica ready", "dataset", dataset, "nodes", dep.N,
		"partition", dep.Partition.String())
	slog.Info("listening", "addr", ln.Addr().String())

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	slog.Info("source connected", "remote", conn.RemoteAddr().String())

	frames := 0
	for {
		f, err := stream.ReadFrame(conn, sink.Resolution())
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := sink.Apply(f); err != nil {
			return err
		}
		frames++
		if every > 0 && frames%every == 0 {
			printAnswer(sink, f)
		}
	}
	slog.Info("stream closed", "frames", sink.Steps(), "heartbeats", sink.Heartbeats())
	printAnswer(sink, wire.Frame{Step: uint64(sink.Steps())})
	return nil
}

func printAnswer(sink *stream.Replica, f wire.Frame) {
	est := sink.Estimates()
	fmt.Printf("kensink: step %d answer:", f.Step)
	for i, v := range est {
		if i == 8 {
			fmt.Printf(" …")
			break
		}
		fmt.Printf(" %.2f", v)
	}
	fmt.Println()
}
