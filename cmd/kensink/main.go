// Command kensink is the single-tenant base-station endpoint of the
// streaming Ken system. It builds the sink replica from its deployment
// flags, listens for one kensource connection, and requires a session
// handshake: the source's HELLO carries its serialized deployment spec,
// and kensink accepts only a spec that builds the same replica it is
// pinned to — a mismatch is answered with a typed REJECT naming both
// specs, so an operator can tell a stale binary or a wrong flag from
// corruption. (For many concurrent deployments behind one listener, see
// kensinkd.)
//
//	kensink   -listen 127.0.0.1:7070 -dataset garden -seed 1 -k 2
//	kensource -connect 127.0.0.1:7070 -dataset garden -seed 1 -k 2 -steps 500
//
// With -obs-addr the sink serves live /metrics (frames/values applied,
// heartbeats, replica step) plus /debug/pprof while streaming.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"

	"ken/internal/deploy"
	"ken/internal/obs"
	"ken/internal/stream"
	"ken/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options carries the parsed flags; run stays a thin parser so the whole
// serving path is testable without a process boundary.
type options struct {
	listen string
	params deploy.Params
	every  int
	ob     *obs.Observer

	// ready, when non-nil, receives the bound listen address once the
	// listener is up (tests use it to learn the ephemeral port).
	ready chan<- string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kensink", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	o.params.Register(fs)
	fs.StringVar(&o.listen, "listen", "127.0.0.1:7070", "address to accept the source connection on")
	fs.IntVar(&o.every, "print", 100, "print the live answer every N frames (0 = never)")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty = off)")
	var logFlags obs.LogFlags
	logFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if _, err := logFlags.Setup(nil); err != nil {
		fmt.Fprintf(stderr, "kensink: %v\n", err)
		return 2
	}
	o.ob = &obs.Observer{Reg: obs.NewRegistry()}
	if *obsAddr != "" {
		_, bound, err := obs.Serve(*obsAddr, o.ob.Reg)
		if err != nil {
			slog.Error("observability endpoint", "err", err)
			return 1
		}
		slog.Info("observability endpoint up", "addr", bound.String(),
			"paths", "/metrics /debug/vars /debug/pprof/")
	}
	if err := o.run(stdout); err != nil {
		slog.Error("run failed", "err", err)
		return 1
	}
	return 0
}

func (o options) run(stdout io.Writer) error {
	if err := o.params.Validate(); err != nil {
		return err
	}
	dep, err := deploy.Build(o.params)
	if err != nil {
		return err
	}
	sink, err := stream.NewReplica(dep.Config)
	if err != nil {
		return err
	}
	sink.Instrument(o.ob)

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	slog.Info("replica ready", "spec", o.params.ReplicaKey(), "nodes", dep.N,
		"partition", dep.Partition.String())
	slog.Info("listening", "addr", ln.Addr().String())
	if o.ready != nil {
		o.ready <- ln.Addr().String()
	}

	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()
	slog.Info("source connected", "remote", conn.RemoteAddr().String())

	if err := o.handshake(conn); err != nil {
		return err
	}

	frames := 0
	for {
		f, err := stream.ReadFrame(conn, sink.Resolution())
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := sink.Apply(f); err != nil {
			return err
		}
		frames++
		if o.every > 0 && frames%o.every == 0 {
			printAnswer(stdout, sink, f.Step)
		}
	}
	slog.Info("stream closed", "frames", sink.Steps(), "heartbeats", sink.Heartbeats())
	printAnswer(stdout, sink, uint64(sink.Steps()))
	return nil
}

// handshake admits exactly the pinned deployment: same session version,
// same replica spec. Everything else is answered with a typed REJECT and
// returned as the matching typed error.
func (o options) handshake(conn net.Conn) error {
	h, err := stream.ReadHello(conn)
	if err != nil {
		if errors.Is(err, wire.ErrVersionMismatch) {
			_ = stream.WriteReject(conn, wire.Reject{Code: wire.RejectVersion, Reason: err.Error()})
		}
		return err
	}
	if h.Version != wire.SessionVersion {
		reason := fmt.Sprintf("session version mismatch: sink v%d, source v%d",
			uint64(wire.SessionVersion), h.Version)
		_ = stream.WriteReject(conn, wire.Reject{Code: wire.RejectVersion, Reason: reason})
		return fmt.Errorf("%w: local v%d, remote v%d", wire.ErrVersionMismatch, uint64(wire.SessionVersion), h.Version)
	}
	p, err := deploy.DecodeSpec(h.Spec)
	if err != nil {
		_ = stream.WriteReject(conn, wire.Reject{Code: wire.RejectBadSpec, Reason: err.Error()})
		return fmt.Errorf("%w: %v", wire.ErrSpecRejected, err)
	}
	if p.ReplicaKey() != o.params.ReplicaKey() {
		reason := fmt.Sprintf("sink is pinned to %s, offered %s", o.params.ReplicaKey(), p.ReplicaKey())
		_ = stream.WriteReject(conn, wire.Reject{Code: wire.RejectSpecMismatch, Reason: reason})
		return fmt.Errorf("%w: %s", wire.ErrSpecRejected, reason)
	}
	tenant := h.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if err := stream.WriteAccept(conn, wire.Accept{Tenant: tenant}); err != nil {
		return err
	}
	slog.Info("session accepted", "tenant", tenant, "spec", p.ReplicaKey())
	return nil
}

func printAnswer(w io.Writer, sink *stream.Replica, step uint64) {
	est := sink.Estimates()
	fmt.Fprintf(w, "kensink: step %d answer:", step)
	for i, v := range est {
		if i == 8 {
			fmt.Fprintf(w, " …")
			break
		}
		fmt.Fprintf(w, " %.2f", v)
	}
	fmt.Fprintln(w)
}
