package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ken/internal/sinkd"
	"ken/internal/slo"
)

// healthServer serves a canned /v1/health with the given status code.
func healthServer(t *testing.T, code int, rep sinkd.HealthReport) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		if err := json.NewEncoder(w).Encode(rep); err != nil {
			t.Error(err)
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestOnceHealthy(t *testing.T) {
	rep := sinkd.HealthReport{
		Status: "ok",
		Tenants: []sinkd.HealthTenant{{
			Name: "t1", State: sinkd.StateStreaming, Health: slo.HealthOK,
			Window: slo.WindowStats{LastStep: 412, QueueDepth: 1, QueueCap: 256, LatencyP95: 0.0004, StalenessSeconds: 0.12},
		}},
	}
	srv := healthServer(t, http.StatusOK, rep)
	var out, errb bytes.Buffer
	if code := run([]string{"-http", srv.URL, "-once", "-fail-degraded"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"status: ok", "t1", "streaming", "412", "1/256", "TENANT"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[2J") {
		t.Error("-once output contains the screen-clear escape")
	}
}

func TestOnceDegradedFailFlag(t *testing.T) {
	rep := sinkd.HealthReport{
		Status: "degraded", Unhealthy: 1,
		Tenants: []sinkd.HealthTenant{{
			Name: "slow", State: sinkd.StateShed, Health: slo.HealthShedding,
			Reasons: []string{slo.ReasonShed},
			Window:  slo.WindowStats{TotalSheds: 1},
		}},
	}
	srv := healthServer(t, http.StatusServiceUnavailable, rep)

	// Without -fail-degraded, -once renders and exits 0: the 503 payload
	// is the dashboard's content, not a transport failure.
	var out, errb bytes.Buffer
	if code := run([]string{"-http", srv.URL, "-once"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d without -fail-degraded, want 0; stderr: %s", code, errb.String())
	}
	for _, want := range []string{"status: degraded", "shedding", slo.ReasonShed} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-http", srv.URL, "-once", "-fail-degraded"}, &out, &errb); code != 3 {
		t.Fatalf("exit %d with -fail-degraded, want 3", code)
	}
	if !strings.Contains(errb.String(), "degraded") {
		t.Errorf("stderr %q lacks the degraded verdict", errb.String())
	}
}

func TestUnreachableDaemon(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-http", "http://127.0.0.1:1", "-once"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d against a dead daemon, want 1", code)
	}
	if errb.Len() == 0 {
		t.Error("no error reported for an unreachable daemon")
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for an unknown flag, want 2", code)
	}
}
