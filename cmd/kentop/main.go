// Command kentop is the terminal dashboard over kensinkd's /v1 API: it
// polls GET /v1/health and renders the tenant fleet with per-tenant
// health, ε-violation rate, staleness, apply-latency, queue and shed
// columns — the live view of the daemon's SLO monitor.
//
//	kentop -http http://127.0.0.1:7071            # full-screen, repaints every 2s
//	kentop -http http://127.0.0.1:7071 -once      # one table, for scripts
//	kentop -once -fail-degraded                   # CI probe: exit 3 unless healthy
//
// With -fail-degraded the exit code is the health verdict (0 healthy,
// 3 degraded), so a smoke test needs no JSON parsing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"ken/internal/sinkd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	base         string
	interval     time.Duration
	once         bool
	failDegraded bool
	client       *http.Client
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("kentop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.base, "http", "http://127.0.0.1:7071", "base URL of the kensinkd /v1 API")
	fs.DurationVar(&o.interval, "interval", 2*time.Second, "poll interval")
	fs.BoolVar(&o.once, "once", false, "render one table and exit (for scripts and CI)")
	fs.BoolVar(&o.failDegraded, "fail-degraded", false, "exit 3 when the daemon reports any unhealthy tenant")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	o.base = strings.TrimRight(o.base, "/")
	o.client = &http.Client{Timeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return o.run(ctx, stdout, stderr)
}

func (o options) run(ctx context.Context, stdout, stderr io.Writer) int {
	for {
		rep, err := o.fetch(ctx)
		if err != nil {
			fmt.Fprintf(stderr, "kentop: %v\n", err)
			return 1
		}
		if !o.once {
			// Clear and home, so the table repaints in place.
			fmt.Fprint(stdout, "\x1b[2J\x1b[H")
		}
		render(stdout, o.base, rep)
		if o.once || (o.failDegraded && rep.Status != "ok") {
			if o.failDegraded && rep.Status != "ok" {
				fmt.Fprintf(stderr, "kentop: daemon degraded (%d unhealthy tenants)\n", rep.Unhealthy)
				return 3
			}
			return 0
		}
		select {
		case <-ctx.Done():
			return 0
		case <-time.After(o.interval):
		}
	}
}

// fetch pulls one health report. A non-200 status is NOT an error at this
// layer: /v1/health answers 503 with the same payload when degraded, and
// the dashboard's job is to show exactly that.
func (o options) fetch(ctx context.Context) (sinkd.HealthReport, error) {
	var rep sinkd.HealthReport
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, o.base+"/v1/health", nil)
	if err != nil {
		return rep, err
	}
	resp, err := o.client.Do(req)
	if err != nil {
		return rep, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return rep, fmt.Errorf("GET /v1/health: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, fmt.Errorf("decoding /v1/health: %w", err)
	}
	return rep, nil
}

func render(w io.Writer, base string, rep sinkd.HealthReport) {
	fmt.Fprintf(w, "kentop · %s · status: %s · tenants: %d (%d unhealthy) · feed drops: %d\n\n",
		base, rep.Status, len(rep.Tenants), rep.Unhealthy, rep.Feed.Dropped)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TENANT\tHEALTH\tSTATE\tSTEP\tVIOL%\tDEV\tSTALE\tP95MS\tQUEUE\tSHED\tREASONS")
	for _, t := range rep.Tenants {
		reasons := strings.Join(t.Reasons, ",")
		if reasons == "" {
			reasons = "-"
		}
		w0 := t.Window
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.2f\t%d\t%s\t%.1f\t%d/%d\t%d\t%s\n",
			t.Name, t.Health, t.State, w0.LastStep,
			100*w0.ViolationRate, w0.Deviations,
			fmtStale(w0.StalenessSeconds),
			1000*w0.LatencyP95,
			w0.QueueDepth, w0.QueueCap,
			w0.TotalSheds, reasons)
	}
	_ = tw.Flush()
}

// fmtStale renders a staleness watermark compactly: sub-second as ms,
// then seconds, then minutes.
func fmtStale(sec float64) string {
	switch {
	case sec < 1:
		return fmt.Sprintf("%.0fms", 1000*sec)
	case sec < 120:
		return fmt.Sprintf("%.1fs", sec)
	default:
		return fmt.Sprintf("%.1fm", sec/60)
	}
}
