package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ken/internal/bench"
)

// baselineResult is the schema of one BENCH_<layer>.json file: a single
// throughput yardstick with enough context to compare runs.
type baselineResult struct {
	Benchmark  string  `json:"benchmark"`
	Unit       string  `json:"unit"`
	PerSec     float64 `json:"per_sec"`
	Count      int     `json:"count"`
	Seconds    float64 `json:"seconds"`
	Config     string  `json:"config"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
}

// compareEntry is one row of a baseline-compare report: a fresh workload
// measurement against the committed yardstick for the same layer.
type compareEntry struct {
	Benchmark      string  `json:"benchmark"`
	Unit           string  `json:"unit"`
	BaselinePerSec float64 `json:"baseline_per_sec"`
	CurrentPerSec  float64 `json:"current_per_sec"`
	// Ratio is current/baseline: 1.0 is parity, below (1 − threshold)
	// counts as a regression.
	Ratio      float64 `json:"ratio"`
	Regression bool    `json:"regression"`
}

// compareReport is the schema of the -compare-out JSON artifact.
type compareReport struct {
	// Threshold is the tolerated fractional slowdown (0.15 = fail when a
	// layer runs >15% below its committed baseline).
	Threshold float64        `json:"threshold"`
	Pass      bool           `json:"pass"`
	Results   []compareEntry `json:"results"`
	// Skipped lists workloads without a committed BENCH_<name>.json in the
	// compare directory (new layers land before their baseline does).
	Skipped []string `json:"skipped,omitempty"`
}

// regressionThreshold is the tolerated fractional slowdown before
// runBaselineCompare fails. Throughput yardsticks on shared CI runners
// jitter by a few percent; 15% is far outside that noise while still
// catching a real O(n) → O(n²) class slip.
const regressionThreshold = 0.15

// runBaselineCompare re-times the layer workloads and diffs them against
// the committed BENCH_<name>.json files in dir. Workloads missing a
// committed baseline are skipped (reported, not failed). A layer more
// than regressionThreshold slower than its baseline makes the whole run
// return an error after the full report is written, so CI sees every
// regression, not just the first.
func runBaselineCompare(ctx context.Context, dir, out string, cfg bench.Config) error {
	wls, err := bench.BaselineWorkloads(cfg)
	if err != nil {
		return fmt.Errorf("preparing baselines: %w", err)
	}
	report := compareReport{Threshold: regressionThreshold, Pass: true}
	for _, wl := range wls {
		path := filepath.Join(dir, "BENCH_"+wl.Name+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				report.Skipped = append(report.Skipped, wl.Name)
				slog.Info("no committed baseline, skipping", "benchmark", wl.Name)
				continue
			}
			return err
		}
		var base baselineResult
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		if base.PerSec <= 0 {
			return fmt.Errorf("%s: non-positive baseline throughput %v", path, base.PerSec)
		}
		start := time.Now()
		count, err := wl.Run(ctx)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("baseline %s: %w", wl.Name, err)
		}
		cur := float64(count) / elapsed
		entry := compareEntry{
			Benchmark: wl.Name, Unit: wl.Unit,
			BaselinePerSec: base.PerSec, CurrentPerSec: cur,
			Ratio:      cur / base.PerSec,
			Regression: cur < (1-regressionThreshold)*base.PerSec,
		}
		if entry.Regression {
			report.Pass = false
		}
		report.Results = append(report.Results, entry)
		slog.Info("baseline compared", "benchmark", wl.Name,
			"baseline", fmt.Sprintf("%.0f %s", base.PerSec, wl.Unit),
			"current", fmt.Sprintf("%.0f %s", cur, wl.Unit),
			"ratio", fmt.Sprintf("%.2f", entry.Ratio),
			"regression", entry.Regression)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if !report.Pass {
		return fmt.Errorf("throughput regression beyond %.0f%% tolerance; see report above", regressionThreshold*100)
	}
	return nil
}

// runBaselines times the prepared layer workloads (core replay, engine
// cell suite, stream endpoints) and writes BENCH_<name>.json for each
// into dir. Setup cost is excluded: the workloads are fully prepared
// before the stopwatch starts.
func runBaselines(ctx context.Context, dir string, cfg bench.Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	wls, err := bench.BaselineWorkloads(cfg)
	if err != nil {
		return fmt.Errorf("preparing baselines: %w", err)
	}
	for _, wl := range wls {
		start := time.Now()
		count, err := wl.Run(ctx)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("baseline %s: %w", wl.Name, err)
		}
		res := baselineResult{
			Benchmark: wl.Name, Unit: wl.Unit,
			PerSec: float64(count) / elapsed, Count: count, Seconds: elapsed,
			Config: wl.Desc, GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
		}
		path := filepath.Join(dir, "BENCH_"+wl.Name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		slog.Info("baseline written", "path", path,
			"throughput", fmt.Sprintf("%.0f %s", res.PerSec, res.Unit))
	}
	return nil
}
