package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ken/internal/bench"
)

// baselineResult is the schema of one BENCH_<layer>.json file: a single
// throughput yardstick with enough context to compare runs.
type baselineResult struct {
	Benchmark  string  `json:"benchmark"`
	Unit       string  `json:"unit"`
	PerSec     float64 `json:"per_sec"`
	Count      int     `json:"count"`
	Seconds    float64 `json:"seconds"`
	Config     string  `json:"config"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
}

// runBaselines times the prepared layer workloads (core replay, engine
// cell suite, stream endpoints) and writes BENCH_<name>.json for each
// into dir. Setup cost is excluded: the workloads are fully prepared
// before the stopwatch starts.
func runBaselines(ctx context.Context, dir string, cfg bench.Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	wls, err := bench.BaselineWorkloads(cfg)
	if err != nil {
		return fmt.Errorf("preparing baselines: %w", err)
	}
	for _, wl := range wls {
		start := time.Now()
		count, err := wl.Run(ctx)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("baseline %s: %w", wl.Name, err)
		}
		res := baselineResult{
			Benchmark: wl.Name, Unit: wl.Unit,
			PerSec: float64(count) / elapsed, Count: count, Seconds: elapsed,
			Config: wl.Desc, GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
		}
		path := filepath.Join(dir, "BENCH_"+wl.Name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		slog.Info("baseline written", "path", path,
			"throughput", fmt.Sprintf("%.0f %s", res.PerSec, res.Unit))
	}
	return nil
}
