// Command kenbench regenerates the figures of the Ken paper's evaluation
// (ICDE'06 §5) over the synthetic Lab and Garden deployments.
//
// Usage:
//
//	kenbench -fig 9              # one figure (7, 8, 9, 10, 11, 12, 13, 14)
//	kenbench -all                # every figure
//	kenbench -all -test 5000     # paper-scale test window (5000 hours)
//	kenbench -fig 9 -quick       # tiny configuration for smoke tests
//
// Output is one text table per figure, with the same rows/series the paper
// plots and notes describing the expected shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ken/internal/bench"
)

var runners = []struct {
	num int
	fn  func(bench.Config) (*bench.Table, error)
}{
	{7, bench.Fig7},
	{8, bench.Fig8},
	{9, bench.Fig9},
	{10, bench.Fig10},
	{11, bench.Fig11},
	{12, bench.Fig12},
	{13, bench.Fig13},
	{14, bench.Fig14},
	// 15 and 16 are not paper figures: they regenerate the beyond-the-paper
	// extension results and the §5.1 ε / sampling-rate sweeps recorded in
	// EXPERIMENTS.md.
	{15, bench.Extensions},
	{16, bench.Sweeps},
}

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (7-14; 15 = extensions, 16 = sweeps)")
	all := flag.Bool("all", false, "regenerate every figure")
	quick := flag.Bool("quick", false, "use the tiny smoke-test configuration")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	seed := flag.Int64("seed", 1, "trace generation seed")
	train := flag.Int("train", 100, "training steps (hours)")
	test := flag.Int("test", 1500, "test steps (hours); the paper uses 5000")
	flag.Parse()

	cfg := bench.Config{Seed: *seed, TrainSteps: *train, TestSteps: *test}
	if *quick {
		cfg = bench.Quick()
		cfg.Seed = *seed
	}

	if !*all && *fig == 0 {
		fmt.Fprintln(os.Stderr, "kenbench: pass -fig N or -all")
		flag.Usage()
		os.Exit(2)
	}

	ran := false
	for _, r := range runners {
		if !*all && r.num != *fig {
			continue
		}
		ran = true
		start := time.Now()
		t, err := r.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kenbench: figure %d: %v\n", r.num, err)
			os.Exit(1)
		}
		write := t.WriteTo
		if *markdown {
			write = t.WriteMarkdown
		}
		if _, err := write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "kenbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(figure %d regenerated in %v)\n\n", r.num, time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "kenbench: unknown figure %d (have 7-16)\n", *fig)
		os.Exit(2)
	}
}
