// Command kenbench regenerates the figures of the Ken paper's evaluation
// (ICDE'06 §5) over the synthetic Lab and Garden deployments.
//
// Usage:
//
//	kenbench -fig 9              # one figure (7, 8, 9, 10, 11, 12, 13, 14)
//	kenbench -all                # every figure
//	kenbench -all -test 5000     # paper-scale test window (5000 hours)
//	kenbench -fig 9 -quick       # tiny configuration for smoke tests
//	kenbench -all -parallel 8    # run each figure's cells on 8 workers
//	kenbench -all -metrics-out m.json   # final metrics snapshot alongside results
//	kenbench -all -obs-addr :8080       # live /metrics + pprof while regenerating
//	kenbench -fig 9 -trace-out t.jsonl  # protocol trace for kenaudit
//
// Figures run one at a time (so output streams incrementally), but within a
// figure the independent cells — one scheme/config/row each — execute on the
// engine's worker pool and share generated traces, Monte Carlo evaluators
// and clique partitions through its artifact cache. Results are
// byte-identical at any -parallel width; Ctrl-C cancels mid-figure.
//
// Output is one text table per figure, with the same rows/series the paper
// plots and notes describing the expected shape.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ken/internal/bench"
	"ken/internal/engine"
	"ken/internal/obs"
)

var runners = []struct {
	num int
	fn  bench.Runner
}{
	{7, bench.Fig7},
	{8, bench.Fig8},
	{9, bench.Fig9},
	{10, bench.Fig10},
	{11, bench.Fig11},
	{12, bench.Fig12},
	{13, bench.Fig13},
	{14, bench.Fig14},
	// 15+ are not paper figures: they regenerate the beyond-the-paper
	// extension results, the §5.1 ε / sampling-rate sweeps recorded in
	// EXPERIMENTS.md, and the reliability (loss × ARQ/heartbeat) sweep.
	{15, bench.Extensions},
	{16, bench.Sweeps},
	{17, bench.Faults},
}

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (7-14; 15 = extensions, 16 = sweeps, 17 = reliability)")
	all := flag.Bool("all", false, "regenerate every figure")
	quick := flag.Bool("quick", false, "use the tiny smoke-test configuration")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	seed := flag.Int64("seed", 1, "trace generation seed")
	train := flag.Int("train", 100, "training steps (hours)")
	test := flag.Int("test", 1500, "test steps (hours); the paper uses 5000")
	parallel := flag.Int("parallel", 0, "worker pool width for experiment cells (0 = GOMAXPROCS, 1 = sequential)")
	metricsOut := flag.String("metrics-out", "", "write a final metrics snapshot JSON to this file ('-' for stdout)")
	baselineOut := flag.String("baseline-out", "", "measure the layer throughput yardsticks and write BENCH_{core,engine,stream}.json into this directory")
	baselineCompare := flag.String("baseline-compare", "", "re-measure the layer yardsticks and diff against the committed BENCH_*.json in this directory; exits non-zero on a >15% throughput regression")
	compareOut := flag.String("compare-out", "", "with -baseline-compare, also write the comparison report JSON to this file")
	var of obs.CmdFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	ob, cleanup, err := of.Setup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kenbench: %v\n", err)
		os.Exit(2)
	}
	defer cleanup()

	reg := ob.Reg
	mFigures := reg.Counter("kenbench_figures_total")
	mErrors := reg.Counter("kenbench_errors_total")
	tFigure := reg.Timer("kenbench_figure_seconds")

	cfg := bench.Config{Seed: *seed, TrainSteps: *train, TestSteps: *test}
	if *quick {
		cfg = bench.Quick()
		cfg.Seed = *seed
	}
	cfg.Obs = ob

	if !*all && *fig == 0 && *baselineOut == "" && *baselineCompare == "" {
		fmt.Fprintln(os.Stderr, "kenbench: pass -fig N, -all, -baseline-out DIR or -baseline-compare DIR")
		flag.Usage()
		os.Exit(2)
	}

	// One engine for the whole invocation: artifacts (traces, evaluators,
	// partitions) deduplicate across figures, not just within one.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng := engine.New(engine.Options{
		Workers: *parallel,
		Obs:     ob,
	})
	slog.Debug("engine configured", "workers", eng.Workers())

	ran := false
	for _, r := range runners {
		if !*all && r.num != *fig {
			continue
		}
		ran = true
		start := time.Now()
		t, err := r.fn(ctx, eng, cfg)
		if err != nil {
			mErrors.Inc()
			slog.Error("figure regeneration failed", "figure", r.num, "err", err)
			cleanup()
			os.Exit(1)
		}
		elapsed := time.Since(start)
		mFigures.Inc()
		tFigure.Observe(elapsed)
		//lint:ignore obshandle per-figure metric family: the name is dynamic and each gauge resolves once per run, off the hot path
		reg.Gauge(fmt.Sprintf("kenbench_figure_%d_seconds", r.num)).Set(elapsed.Seconds())
		write := t.WriteTo
		if *markdown {
			write = t.WriteMarkdown
		}
		if _, err := write(os.Stdout); err != nil {
			slog.Error("writing table failed", "err", err)
			cleanup()
			os.Exit(1)
		}
		fmt.Printf("(figure %d regenerated in %v)\n\n", r.num, elapsed.Round(time.Millisecond))
	}
	if !ran && (*all || *fig != 0) {
		fmt.Fprintf(os.Stderr, "kenbench: unknown figure %d (have 7-17)\n", *fig)
		os.Exit(2)
	}
	if *baselineOut != "" {
		if err := runBaselines(ctx, *baselineOut, cfg); err != nil {
			slog.Error("baseline run failed", "err", err)
			cleanup()
			os.Exit(1)
		}
	}
	if *baselineCompare != "" {
		if err := runBaselineCompare(ctx, *baselineCompare, *compareOut, cfg); err != nil {
			slog.Error("baseline compare failed", "err", err)
			cleanup()
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeSnapshot(*metricsOut, reg); err != nil {
			slog.Error("writing metrics snapshot failed", "err", err)
			cleanup()
			os.Exit(1)
		}
	}
}

// writeSnapshot dumps the registry as indented JSON to path ('-' = stdout).
func writeSnapshot(path string, reg *obs.Registry) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		return err
	}
	if path != "-" {
		slog.Info("metrics snapshot written", "path", path)
	}
	return nil
}
