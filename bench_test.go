// Package ken_test hosts the benchmark harness: one testing.B benchmark per
// paper figure (regenerating its rows; see EXPERIMENTS.md for recorded
// outputs) plus ablation benchmarks for the design choices called out in
// DESIGN.md. Run everything with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report domain metrics (reported fraction, cost) via
// b.ReportMetric alongside wall-clock time.
package ken_test

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"ken/internal/bench"
	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/deploy"
	"ken/internal/gauss"
	"ken/internal/mat"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/simnet"
	"ken/internal/stream"
	"ken/internal/trace"
	"ken/internal/wire"
)

// benchCfg sizes the figure regenerations for benchmarking: smaller than a
// full kenbench run, larger than the unit-test Quick config.
func benchCfg() bench.Config {
	return bench.Config{
		Seed:           1,
		TrainSteps:     100,
		TestSteps:      500,
		MCTrajectories: 6,
		MCHorizon:      36,
		NeighborLimit:  6,
	}
}

// runFigure drives a figure runner b.N times. Each iteration gets a nil
// engine (sequential, cold cache) so the benchmark measures full figure
// regeneration, as before the engine existed.
func runFigure(b *testing.B, fn bench.Runner) *bench.Table {
	b.Helper()
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := fn(context.Background(), nil, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	return last
}

// metricFromRow extracts a percentage cell ("35.3%") as a fraction.
func metricFromRow(b *testing.B, t *bench.Table, label string, col int) float64 {
	b.Helper()
	for _, row := range t.Rows {
		if row[0] == label {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if err != nil {
				b.Fatal(err)
			}
			return v / 100
		}
	}
	b.Fatalf("row %q missing", label)
	return 0
}

func BenchmarkFig07LabOverview(b *testing.B) {
	runFigure(b, bench.Fig7)
}

func BenchmarkFig08GardenOverview(b *testing.B) {
	runFigure(b, bench.Fig8)
}

func BenchmarkFig09GardenReported(b *testing.B) {
	t := runFigure(b, bench.Fig9)
	b.ReportMetric(metricFromRow(b, t, "DjC1", 1), "DjC1-frac")
	b.ReportMetric(metricFromRow(b, t, "DjC6", 1), "DjC6-frac")
}

func BenchmarkFig10LabReported(b *testing.B) {
	t := runFigure(b, bench.Fig10)
	b.ReportMetric(metricFromRow(b, t, "DjC1", 1), "DjC1-frac")
	b.ReportMetric(metricFromRow(b, t, "DjC5", 1), "DjC5-frac")
}

func BenchmarkFig11GreedyVsExhaustive(b *testing.B) {
	t := runFigure(b, bench.Fig11)
	// Last row (largest k): greedy/optimal ratio.
	ratio, err := strconv.ParseFloat(t.Rows[len(t.Rows)-1][3], 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(ratio, "greedy/optimal")
}

func BenchmarkFig12GardenTopology(b *testing.B) {
	runFigure(b, bench.Fig12)
}

func BenchmarkFig13LabRegions(b *testing.B) {
	runFigure(b, bench.Fig13)
}

func BenchmarkFig14MultiAttribute(b *testing.B) {
	runFigure(b, bench.Fig14)
}

// --- Ablation benchmarks -------------------------------------------------

// gardenClique fits a LinearGaussian over the first k garden nodes.
func gardenClique(b *testing.B, k, steps int) (*model.LinearGaussian, [][]float64, []float64) {
	b.Helper()
	tr, err := trace.GenerateGarden(5, steps)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		b.Fatal(err)
	}
	cols := make([][]float64, len(rows))
	for i, r := range rows {
		cols[i] = r[:k]
	}
	mdl, err := model.FitLinearGaussian(cols[:100], model.FitConfig{Period: 24})
	if err != nil {
		b.Fatal(err)
	}
	eps := make([]float64, k)
	for i := range eps {
		eps[i] = 0.5
	}
	return mdl, cols[100:], eps
}

// BenchmarkAblationSubsetSearch compares the greedy minimal-report search
// with exhaustive subset enumeration on a 5-attribute clique (§3.2 step
// 4(a)).
func BenchmarkAblationSubsetSearch(b *testing.B) {
	mdl, test, eps := gardenClique(b, 5, 300)
	for _, mode := range []struct {
		name       string
		exhaustive bool
	}{{"greedy", false}, {"exhaustive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := mdl.Clone()
				sent := 0
				for _, row := range test {
					m.Step()
					var obs map[int]float64
					var err error
					if mode.exhaustive {
						obs, err = model.ChooseReportExhaustive(m, row, eps)
					} else {
						obs, err = model.ChooseReportGreedy(m, row, eps)
					}
					if err != nil {
						b.Fatal(err)
					}
					if err := m.Condition(obs); err != nil {
						b.Fatal(err)
					}
					sent += len(obs)
				}
				b.ReportMetric(float64(sent)/float64(len(test)*5), "frac-reported")
			}
		})
	}
}

// BenchmarkAblationMCSamples studies partition quality versus Monte Carlo
// effort (§4.4): more trajectories stabilise the m_C estimates the greedy
// partitioner consumes.
func BenchmarkAblationMCSamples(b *testing.B) {
	tr, err := trace.GenerateGarden(5, 200)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		b.Fatal(err)
	}
	train := rows[:100]
	eps := make([]float64, tr.Deployment.N())
	for i := range eps {
		eps[i] = 0.5
	}
	top, err := network.Uniform(tr.Deployment.N(), 1, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, traj := range []int{2, 8, 32} {
		b.Run("traj="+strconv.Itoa(traj), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24},
					mc.Config{Trajectories: traj, Horizon: 36, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				p, err := cliques.Greedy(top, eval, cliques.GreedyConfig{K: 3, NeighborLimit: 6})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(p.TotalCost(), "partition-cost")
			}
		})
	}
}

// BenchmarkAblationPruning measures the Fig 6 distance-pruning rule: how
// much partitioning time it saves on a geometric lab topology.
func BenchmarkAblationPruning(b *testing.B) {
	tr, err := trace.GenerateLab(5, 200)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		b.Fatal(err)
	}
	n := 20 // a lab subset keeps the no-pruning arm tractable
	train := make([][]float64, 100)
	for i := range train {
		train[i] = rows[i][:n]
	}
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	links := make([]network.Link, 0, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links = append(links, network.Link{U: i, V: j,
				Cost: 0.5 + tr.Deployment.Nodes[i].Distance(tr.Deployment.Nodes[j])/6})
		}
		links = append(links, network.Link{U: i, V: n, Cost: 6})
	}
	top, err := network.New(n, links)
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range []struct {
		name  string
		prune float64
	}{{"pruned", 0.25}, {"unpruned", 1000}} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24},
					mc.Config{Trajectories: 4, Horizon: 24, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				p, err := cliques.Greedy(top, eval, cliques.GreedyConfig{
					K: 4, NeighborLimit: 8, PruneFraction: arm.prune})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(p.TotalCost(), "partition-cost")
			}
		})
	}
}

// BenchmarkAblationConditioning compares the production conditioning path
// (Cholesky solves, no explicit inverse) against a naive implementation
// that inverts Σ_bb explicitly.
func BenchmarkAblationConditioning(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	dims := []int{4, 8, 16}
	for _, n := range dims {
		g := randomGaussian(b, rng, n)
		obs := map[int]float64{}
		for i := 0; i < n/2; i++ {
			obs[i] = rng.NormFloat64()
		}
		b.Run("cholesky/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := g.Condition(obs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("inverse/n="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := conditionViaInverse(g, obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scratchSearchModel hides model.IncrementalConditioner, forcing
// ChooseReportGreedy onto the from-scratch MeanGiven reference path.
type scratchSearchModel struct{ model.Model }

// BenchmarkAblationIncrementalSearch compares the greedy report search
// through the cached incremental conditioning evaluator (grow one Cholesky
// factor by a row per round) against the from-scratch reference path
// (refactorize the observed block every round) on the same clique state.
// Both arms choose identical report sets; only the evaluation cost
// differs.
func BenchmarkAblationIncrementalSearch(b *testing.B) {
	for _, k := range []int{4, 8} {
		mdl, test, eps := gardenClique(b, k, 200)
		for i := range eps {
			eps[i] = 0.05 // tight bounds so the search runs several rounds
		}
		mdl.Step()
		truth := test[0]
		for _, arm := range []struct {
			name string
			m    model.Model
		}{{"incremental", mdl}, {"scratch", scratchSearchModel{mdl}}} {
			b.Run(arm.name+"/k="+strconv.Itoa(k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					obs, err := model.ChooseReportGreedy(arm.m, truth, eps)
					if err != nil {
						b.Fatal(err)
					}
					if len(obs) == 0 {
						b.Fatal("empty report set — the search was not exercised")
					}
				}
			})
		}
	}
}

func randomGaussian(b *testing.B, rng *rand.Rand, n int) *gauss.Gaussian {
	b.Helper()
	m := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	cov, err := m.Mul(m.T())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		cov.Add(i, i, 1)
	}
	mean := make([]float64, n)
	g, err := gauss.New(mean, cov)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// conditionViaInverse is the naive ablation arm: μ_a|b via an explicit
// Σ_bb⁻¹.
func conditionViaInverse(g *gauss.Gaussian, obs map[int]float64) error {
	n := g.Dim()
	obsIdx := make([]int, 0, len(obs))
	for i := range obs {
		obsIdx = append(obsIdx, i)
	}
	keep := make([]int, 0, n-len(obsIdx))
	inObs := map[int]bool{}
	for _, i := range obsIdx {
		inObs[i] = true
	}
	for i := 0; i < n; i++ {
		if !inObs[i] {
			keep = append(keep, i)
		}
	}
	cov := g.Cov()
	mean := g.Mean()
	sigAB := cov.Submatrix(keep, obsIdx)
	sigBB := cov.Submatrix(obsIdx, obsIdx)
	ch, err := mat.NewCholesky(sigBB)
	if err != nil {
		return err
	}
	inv, err := ch.Inverse()
	if err != nil {
		return err
	}
	delta := make([]float64, len(obsIdx))
	for k, i := range obsIdx {
		delta[k] = obs[i] - mean[i]
	}
	w, err := inv.MulVec(delta)
	if err != nil {
		return err
	}
	if _, err := sigAB.MulVec(w); err != nil {
		return err
	}
	return nil
}

// --- Micro-benchmarks on the hot path ------------------------------------

func BenchmarkLinearGaussianStep(b *testing.B) {
	mdl, _, _ := gardenClique(b, 6, 150)
	m := mdl.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkKenStepGarden(b *testing.B) {
	tr, err := trace.GenerateGarden(5, 300)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		b.Fatal(err)
	}
	n := tr.Deployment.N()
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	p := &cliques.Partition{}
	for i := 0; i+2 < n; i += 3 {
		p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1, i + 2}, Root: i})
	}
	for i := (n / 3) * 3; i < n; i++ {
		p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
	}
	s, err := core.NewKen(core.KenConfig{
		Partition: p, Train: rows[:100], Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	})
	if err != nil {
		b.Fatal(err)
	}
	test := rows[100:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Step(test[i%len(test)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCExpectedReports(b *testing.B) {
	mdl, _, eps := gardenClique(b, 3, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.ExpectedReports(mdl, eps, mc.Config{Trajectories: 8, Horizon: 48, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGenerateLab(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.GenerateLab(int64(i), 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSwitchingModel compares the plain LinearGaussian with
// the §6 regime-switching model on HVAC-style two-level data.
func BenchmarkAblationSwitchingModel(b *testing.B) {
	data := regimeSeries(11, 1500)
	train, test := data[:500], data[500:]
	eps := []float64{0.5, 0.5}
	plain, err := model.FitLinearGaussian(train, model.FitConfig{})
	if err != nil {
		b.Fatal(err)
	}
	sw, err := model.FitSwitching(train, model.SwitchingConfig{Regimes: 2})
	if err != nil {
		b.Fatal(err)
	}
	arms := []struct {
		name string
		mdl  model.Model
	}{{"plain", plain}, {"switching", sw}}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := arm.mdl.Clone()
				sent := 0
				for _, row := range test {
					m.Step()
					obs, err := model.ChooseReportGreedy(m, row, eps)
					if err != nil {
						b.Fatal(err)
					}
					if err := m.Condition(obs); err != nil {
						b.Fatal(err)
					}
					sent += len(obs)
				}
				b.ReportMetric(float64(sent)/float64(len(test)*2), "frac-reported")
			}
		})
	}
}

// regimeSeries mirrors the switching model's target data: two attributes
// flipping between persistent levels with AR noise.
func regimeSeries(seed int64, steps int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, steps)
	level := 0.0
	w1, w2 := 0.0, 0.0
	for t := range data {
		if rng.Float64() < 0.02 {
			if level == 0 {
				level = -4
			} else {
				level = 0
			}
		}
		w1 = 0.7*w1 + 0.35*rng.NormFloat64()
		w2 = 0.7*w2 + 0.35*rng.NormFloat64()
		data[t] = []float64{20 + level + w1, 20.5 + level + w2}
	}
	return data
}

// BenchmarkAblationAdaptiveRefit compares a static model with the
// footnote-4 adaptive wrapper on data whose season shifts mid-stream.
func BenchmarkAblationAdaptiveRefit(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	steps := 1400
	data := make([][]float64, steps)
	w := 0.0
	for t := range data {
		amp, base := 1.5, 20.0
		if t >= steps/2 {
			amp, base = 3.2, 22.5
		}
		w = 0.75*w + 0.3*rng.NormFloat64()
		d := amp * math.Sin(2*math.Pi*float64(t)/24)
		data[t] = []float64{base + d + w, base + 0.4 + d + w*0.8}
	}
	train, test := data[:100], data[100:]
	eps := []float64{0.5, 0.5}
	lg, err := model.FitLinearGaussian(train, model.FitConfig{Period: 24})
	if err != nil {
		b.Fatal(err)
	}
	adaptive, err := model.NewAdaptive(lg, model.AdaptiveConfig{
		RefitEvery: 96, Window: 240, Fit: model.FitConfig{Period: 24}})
	if err != nil {
		b.Fatal(err)
	}
	arms := []struct {
		name string
		mdl  model.Model
	}{{"static", lg}, {"adaptive", adaptive}}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := arm.mdl.Clone()
				sent := 0
				for _, row := range test {
					m.Step()
					obs, err := model.ChooseReportGreedy(m, row, eps)
					if err != nil {
						b.Fatal(err)
					}
					if err := m.Condition(obs); err != nil {
						b.Fatal(err)
					}
					sent += len(obs)
				}
				b.ReportMetric(float64(sent)/float64(len(test)*2), "frac-reported")
			}
		})
	}
}

// BenchmarkSimnetLifetime measures the distributed programs' network
// lifetime (epochs until first node death) on a multi-hop chain.
func BenchmarkSimnetLifetime(b *testing.B) {
	tr, err := trace.GenerateGarden(21, 2300)
	if err != nil {
		b.Fatal(err)
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		b.Fatal(err)
	}
	n := tr.Deployment.N()
	train, test := rows[:100], rows[100:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	links := make([]network.Link, 0, n)
	for i := 0; i < n; i++ {
		links = append(links, network.Link{U: i, V: i + 1, Cost: 1})
	}
	top, err := network.New(n, links)
	if err != nil {
		b.Fatal(err)
	}
	radio := simnet.DefaultRadio()
	radio.BatteryJ = 0.15
	radio.IdlePerEpoch = 1e-5
	part := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i + 1})
		} else {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	for _, name := range []string{"tinydb", "ken"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				net, err := simnet.New(top, radio, 99)
				if err != nil {
					b.Fatal(err)
				}
				var prog simnet.Program
				if name == "tinydb" {
					prog, err = simnet.NewDistributedTinyDB(net, eps)
				} else {
					prog, err = simnet.NewDistributedKen(net, part, train, eps, model.FitConfig{Period: 24})
				}
				if err != nil {
					b.Fatal(err)
				}
				death, _, err := simnet.RunLifetime(net, prog, test)
				if err != nil {
					b.Fatal(err)
				}
				if death < 0 {
					death = len(test)
				}
				b.ReportMetric(float64(death), "epochs-to-first-death")
			}
		})
	}
}

// BenchmarkStreamThroughput measures frames per second through the full
// source→wire→sink pipeline over an in-memory buffer.
func BenchmarkStreamThroughput(b *testing.B) {
	dep, err := deploy.Build(deploy.Params{TestSteps: 600})
	if err != nil {
		b.Fatal(err)
	}
	src, err := stream.NewSource(dep.Config)
	if err != nil {
		b.Fatal(err)
	}
	sink, err := stream.NewReplica(dep.Config)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := dep.Test[i%len(dep.Test)]
		f, err := src.Collect(row)
		if err != nil {
			b.Fatal(err)
		}
		// Re-stamp the step when wrapping past the test data.
		if err := stream.WriteFrame(&buf, f, src.Resolution()); err != nil {
			b.Fatal(err)
		}
		got, err := stream.ReadFrame(&buf, sink.Resolution())
		if err != nil {
			b.Fatal(err)
		}
		if err := sink.Apply(got); err != nil {
			b.Fatal(err)
		}
		buf.Reset()
	}
}

// BenchmarkWireEncodeDecode measures the frame codec alone.
func BenchmarkWireEncodeDecode(b *testing.B) {
	attrs := make([]int, 16)
	vals := make([]float64, 16)
	for i := range attrs {
		attrs[i] = i * 3
		vals[i] = 20 + float64(i)*0.37
	}
	f := wire.Frame{Step: 9999, Attrs: attrs, Values: vals}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := wire.Encode(f, 0.005)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(buf, 0.005); err != nil {
			b.Fatal(err)
		}
	}
}
