// Quickstart: the smallest end-to-end Ken pipeline.
//
// It generates a garden deployment trace, fits per-clique models on the
// first 100 hours, selects a Disjoint-Cliques partition with the Greedy-k
// heuristic, replays a "SELECT * FREQ hourly WITHIN ±0.5°C" query over the
// next 1000 hours, and prints how much communication Ken saved while
// keeping every answer within the error bound.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A deployment trace: 11 garden motes, hourly temperature readings.
	const trainHours, testHours = 100, 1000
	tr, err := trace.GenerateGarden(42, trainHours+testHours)
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	train, test := rows[:trainHours], rows[trainHours:]

	// 2. The query: SELECT * FREQ hourly WITHIN ±0.5 °C.
	n := tr.Deployment.N()
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}

	// 3. Pick a Disjoint-Cliques model with the Greedy-k heuristic: the
	//    Monte Carlo evaluator estimates each candidate clique's expected
	//    reporting rate from a model fitted to the training window.
	top, err := network.Uniform(n, 1, 5)
	if err != nil {
		return err
	}
	eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24}, mc.Config{Seed: 42})
	if err != nil {
		return err
	}
	partition, err := cliques.Greedy(top, eval, cliques.GreedyConfig{K: 3})
	if err != nil {
		return err
	}
	fmt.Println("chosen partition:", partition)

	// 4. Build the replicated-model scheme and replay the test window.
	ken, err := core.NewKen(core.KenConfig{
		Partition: partition,
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	})
	if err != nil {
		return err
	}
	res, err := core.Run(context.Background(), ken, test, core.RunOptions{Eps: eps})
	if err != nil {
		return err
	}

	// 5. Compare with shipping everything (TinyDB).
	fmt.Printf("readings collected : %d nodes × %d hours = %d values\n", n, res.Steps, n*res.Steps)
	fmt.Printf("values transmitted : %d (%.1f%% — TinyDB would send 100%%)\n",
		res.ValuesReported, 100*res.FractionReported())
	fmt.Printf("max answer error   : %.3f °C (bound 0.5 °C, violations: %d)\n",
		res.MaxAbsError, res.BoundViolations)
	return nil
}
