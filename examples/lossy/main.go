// Lossy: Ken over an unreliable radio (§6 "Robustness to Message Loss").
//
// End-to-end acknowledgements are too expensive for sensornets, so lost
// reports silently desynchronise the source and sink replicas. The
// Markovian models offer a cheaper remedy: a periodic heartbeat carrying
// the current values makes the future independent of the divergent past,
// so inconsistencies are transient. This example sweeps heartbeat
// frequency at a fixed 30% loss rate and shows the trade-off between extra
// heartbeat traffic and residual error.
//
//	go run ./examples/lossy
package main

import (
	"context"
	"fmt"
	"log"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/trace"
)

const (
	trainHours = 100
	testHours  = 1000
	lossRate   = 0.3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := trace.GenerateGarden(11, trainHours+testHours)
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainHours], rows[trainHours:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		hi := i + 1
		if hi >= n {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
			continue
		}
		p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, hi}, Root: i})
	}
	base := core.KenConfig{
		Partition: p,
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	}

	fmt.Printf("garden, %d nodes, %d hours, %.0f%% message loss\n", n, testHours, 100*lossRate)
	fmt.Printf("%-18s %10s %12s %12s %10s\n", "heartbeat", "reported", "violations", "stale steps", "max err")
	for _, every := range []int{0, 48, 12, 4} {
		s, err := core.NewLossyKen(base, core.LossyConfig{
			LossRate:       lossRate,
			HeartbeatEvery: every,
			Seed:           11,
		})
		if err != nil {
			return err
		}
		res, err := core.Run(context.Background(), s, test, core.RunOptions{Eps: eps})
		if err != nil {
			return err
		}
		label := "none"
		if every > 0 {
			label = fmt.Sprintf("every %d h", every)
		}
		// A "stale step" is a (step, node) whose estimate violates ε —
		// divergence the guarantee would have forbidden on a clean channel.
		fmt.Printf("%-18s %9.1f%% %12d %12d %10.2f\n",
			label, 100*res.FractionReported(), res.BoundViolations,
			res.BoundViolations, res.MaxAbsError)
	}
	fmt.Println("\nmore frequent heartbeats spend messages to cap divergence — transient, as §6 predicts")
	return nil
}
