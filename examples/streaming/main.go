// Streaming: Ken as a distributed-streams system (§6 "Application to
// Caching, Distributed Streams").
//
// A source process colocated with the sensors and a sink process at the
// base station run replicated models and exchange compact binary frames
// over a real TCP connection. The sink continuously answers SELECT *
// within ±ε while the wire carries only the model-surprising values —
// plus a heartbeat frame every 24 h for loss robustness.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"net"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/stream"
	"ken/internal/trace"
)

const (
	trainHours = 100
	testHours  = 600
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := trace.GenerateGarden(17, trainHours+testHours)
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainHours], rows[trainHours:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}
	part := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
		} else {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	cfg := stream.Config{
		Partition:      part,
		Train:          train,
		Eps:            eps,
		FitCfg:         model.FitConfig{Period: 24},
		HeartbeatEvery: 24,
	}

	src, err := stream.NewSource(cfg)
	if err != nil {
		return err
	}
	sink, err := stream.NewReplica(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("sink listening on %s, source streaming %d hourly frames (ε=0.5°C)\n",
		ln.Addr(), testHours)

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- sink.Serve(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	bytesSent := 0
	values := 0
	for _, row := range test {
		f, err := src.Collect(row)
		if err != nil {
			return err
		}
		values += len(f.Attrs)
		if err := stream.WriteFrame(conn, f, src.Resolution()); err != nil {
			return err
		}
		bytesSent += 4 + frameBytes(len(f.Attrs))
	}
	conn.Close()
	if err := <-done; err != nil {
		return err
	}

	// Audit the final answer against ground truth.
	est := sink.Estimates()
	worst := 0.0
	for i, v := range test[len(test)-1] {
		worst = math.Max(worst, math.Abs(est[i]-v))
	}
	naive := testHours * n * 10 // ~10 bytes per (step, attr, float) triple
	fmt.Printf("frames applied   : %d (heartbeats: %d)\n", sink.Steps(), sink.Heartbeats())
	fmt.Printf("values on wire   : %d of %d readings (%.1f%%)\n",
		values, testHours*n, 100*float64(values)/float64(testHours*n))
	fmt.Printf("approx wire bytes: %d (naive streaming ≈ %d, %.1fx reduction)\n",
		bytesSent, naive, float64(naive)/float64(bytesSent))
	fmt.Printf("final answer err : %.3f °C (bound 0.5)\n", worst)
	return nil
}

// frameBytes approximates an encoded frame's size for the report line.
func frameBytes(pairs int) int { return 4 + 5*pairs }
