// Pullquery: on-demand querying over the probabilistic model (§2's
// complementary BBQ-style design point, with the combined push/pull mode
// the paper says it is "currently exploring").
//
// A scientist occasionally asks the base station for values or regional
// averages at chosen precision/confidence; the engine answers from the
// model posterior when it can, and acquires the cheapest reading set when
// it cannot. A second engine is kept warm by Ken-style pushes and answers
// the same queries cheaper.
//
//	go run ./examples/pullquery
package main

import (
	"fmt"
	"log"

	"ken/internal/model"
	"ken/internal/pull"
	"ken/internal/trace"
)

const (
	trainHours = 100
	testHours  = 200
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := trace.GenerateGarden(23, trainHours+testHours)
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainHours], rows[trainHours:]
	mdl, err := model.FitLinearGaussian(train, model.FitConfig{Period: 24})
	if err != nil {
		return err
	}

	engine, err := pull.New(mdl.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		return err
	}

	// Time passes with no communication at all; the posterior widens.
	now := 36 // hours into the test window
	for i := 0; i < now; i++ {
		engine.Step()
	}
	src := pull.SourceFunc(func(attr int) (float64, error) { return test[now-1][attr], nil })

	fmt.Printf("garden, %d nodes; %d silent hours since the model was fit\n\n", n, now)

	// Query 1: tight per-node values for the west half.
	q1 := pull.ValueQuery{Attrs: []int{0, 1, 2, 3, 4}, Epsilon: 0.5, Confidence: 0.95}
	a1, err := engine.Query(q1, src)
	if err != nil {
		return err
	}
	fmt.Printf("value query  ε=0.5 δ=0.95 over 5 nodes: acquired %v (cost %.0f)\n", a1.Acquired, a1.Cost)
	for k, attr := range q1.Attrs {
		fmt.Printf("  node %-2d → %6.2f °C (truth %6.2f, confidence %.3f)\n",
			attr, a1.Values[k], test[now-1][attr], a1.Confidence[k])
	}

	// Query 2: a regional average at the same precision — far cheaper.
	fresh, err := pull.New(mdl.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		return err
	}
	for i := 0; i < now; i++ {
		fresh.Step()
	}
	q2 := pull.AvgQuery{Attrs: []int{0, 1, 2, 3, 4}, Epsilon: 0.5, Confidence: 0.95}
	a2, err := fresh.QueryAverage(q2, src)
	if err != nil {
		return err
	}
	truth := 0.0
	for _, a := range q2.Attrs {
		truth += test[now-1][a]
	}
	truth /= float64(len(q2.Attrs))
	fmt.Printf("\naverage query ε=0.5 δ=0.95 over same nodes: acquired %v (cost %.0f)\n", a2.Acquired, a2.Cost)
	fmt.Printf("  avg → %6.2f °C (truth %6.2f, confidence %.3f)\n", a2.Value, truth, a2.Confidence)

	// Query 3: combined push/pull — a replica warmed by periodic Ken
	// pushes of node 0 answers the tight value query cheaper.
	warm, err := pull.New(mdl.Clone().(*model.LinearGaussian), nil)
	if err != nil {
		return err
	}
	for i := 0; i < now; i++ {
		warm.Step()
		// Ken pushes arrive whenever the source's predictions miss; here
		// nodes 0 and 2 reported on the final hours before the query.
		if i >= now-2 {
			if err := warm.Condition(map[int]float64{0: test[i][0], 2: test[i][2]}); err != nil {
				return err
			}
		}
	}
	a3, err := warm.Query(q1, src)
	if err != nil {
		return err
	}
	fmt.Printf("\nsame value query on a push-warmed replica: acquired %v (cost %.0f vs cold %.0f)\n",
		a3.Acquired, a3.Cost, a1.Cost)
	fmt.Println("\npush keeps the model warm; pull spends only where confidence is short — complementary, as §2 argues")
	return nil
}
