// Lifetime: the paper's energy argument, measured end to end (§1).
//
// Radio traffic dominates a mote's energy budget; the original Sonoma
// deployment lost a third of its nodes in days when a bug kept radios
// busy. This example runs TinyDB-style full dumps and Ken side by side as
// *distributed node programs* on the packet-level simulator — hop-by-hop
// forwarding, per-byte transmit/receive energy, batteries — over a
// multi-hop garden transect, and reports when nodes start dying and how
// much of the network survives a season.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"log"

	"ken/internal/cliques"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/simnet"
	"ken/internal/trace"
)

const (
	trainHours = 100
	testHours  = 24 * 90 // a season of hourly epochs
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := trace.GenerateGarden(13, trainHours+testHours)
	if err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainHours], rows[trainHours:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}

	// A transect chain: node 10 sits next to the base station, node 0 is
	// eleven hops out. Relays near the base carry everyone's traffic —
	// the classic sensornet hotspot.
	links := make([]network.Link, 0, n)
	for i := 0; i < n; i++ {
		links = append(links, network.Link{U: i, V: i + 1, Cost: 1})
	}
	top, err := network.New(n, links)
	if err != nil {
		return err
	}

	// Batteries sized so a TinyDB workload exhausts the hotspot within the
	// season (scaled-down Telos numbers; only the ratio matters).
	radio := simnet.DefaultRadio()
	radio.BatteryJ = 0.35
	radio.IdlePerEpoch = 2e-5

	// Ken's partition: adjacent pairs, rooted at the member closer to the
	// base so intra traffic flows downhill.
	part := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i + 1})
		} else {
			part.Cliques = append(part.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}

	fmt.Printf("garden transect, %d nodes, %d hourly epochs, battery %.2f J/node\n\n",
		n, testHours, radio.BatteryJ)
	fmt.Printf("%-8s %12s %12s %12s %14s %12s %12s\n",
		"program", "first death", "alive @end", "delivered", "link messages", "energy (J)", "stale answers")

	for _, name := range []string{"tinydb", "ken"} {
		net, err := simnet.New(top, radio, 99)
		if err != nil {
			return err
		}
		var prog simnet.Program
		switch name {
		case "tinydb":
			prog, err = simnet.NewDistributedTinyDB(net, eps)
		case "ken":
			prog, err = simnet.NewDistributedKen(net, part, train, eps, model.FitConfig{Period: 24})
		}
		if err != nil {
			return err
		}
		delivered, violations := 0, 0
		firstDeath := -1
		for t, row := range test {
			res, err := prog.Epoch(row)
			if err != nil {
				return err
			}
			delivered += res.ValuesDelivered
			violations += res.Violations
			if firstDeath < 0 && net.AliveCount() < n {
				firstDeath = t + 1
			}
		}
		st := net.Stats()
		death := "none"
		if firstDeath > 0 {
			death = fmt.Sprintf("epoch %d", firstDeath)
		}
		fmt.Printf("%-8s %12s %9d/%d %12d %14d %12.2f %12d\n",
			name, death, net.AliveCount(), n, delivered, st.MessagesSent, st.EnergySpent, violations)
	}
	fmt.Println("\nKen's silence is energy: the hotspot relay survives the season that TinyDB kills it in")
	return nil
}
