// Anomaly: event-detection with Ken (§1.1). The model encodes the expected
// "normal" state of the environment; anomalies — here, heat spikes injected
// into a lab-style deployment — are exactly the readings the model cannot
// predict, so Ken pushes them to the base station the moment they occur
// while staying almost silent in steady state. Approximate data collection
// and event detection become the same mechanism.
//
// The example also demonstrates the §6 node-failure detector: a node that
// goes silent for longer than its expected miss rate explains is flagged.
//
//	go run ./examples/anomaly
package main

import (
	"context"
	"fmt"
	"log"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/events"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/trace"
)

const (
	trainHours = 100
	testHours  = 500
	spikeNode  = 10
	spikeHour  = 200 // test-window index of the injected event
	spikeSize  = 18  // °C — a fire-like heat excursion
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := trace.GenerateLab(3, trainHours+testHours)
	if err != nil {
		return err
	}
	// Inject a 3-hour heat spike into the test window.
	from := trainHours + spikeHour
	if err := tr.InjectAnomaly(trace.Temperature, spikeNode, from, from+3, spikeSize); err != nil {
		return err
	}
	rows, err := tr.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	train, test := rows[:trainHours], rows[trainHours:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}

	// Singleton cliques: each node is its own detector (typical for
	// event-driven deployments where nodes must act autonomously).
	p := &cliques.Partition{}
	for i := 0; i < n; i++ {
		p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
	}
	ken, err := core.NewKen(core.KenConfig{
		Partition: p,
		Train:     train,
		Eps:       eps,
		FitCfg:    model.FitConfig{Period: 24},
	})
	if err != nil {
		return err
	}
	res, err := core.Run(context.Background(), ken, test, core.RunOptions{Eps: eps})
	if err != nil {
		return err
	}
	if res.BoundViolations != 0 {
		return fmt.Errorf("guarantee violated %d times", res.BoundViolations)
	}

	fmt.Printf("steady-state traffic: %.1f%% of readings reported\n", 100*res.FractionReported())

	// The sink sees the spike the hour it happens: its estimate tracks the
	// anomalous truth within ε because the node pushed the reading.
	estBefore := res.Estimates[spikeHour-1][spikeNode]
	estDuring := res.Estimates[spikeHour][spikeNode]
	truthDuring := test[spikeHour][spikeNode]
	fmt.Printf("node %d estimate: %.2f°C the hour before, %.2f°C during the spike (truth %.2f°C)\n",
		spikeNode, estBefore, estDuring, truthDuring)
	if diff := estDuring - truthDuring; diff < -0.5 || diff > 0.5 {
		return fmt.Errorf("sink missed the anomaly: estimate %v, truth %v", estDuring, truthDuring)
	}
	if !res.ReportedAt(spikeHour, spikeNode) {
		return fmt.Errorf("spiking node did not report at the spike hour")
	}
	fmt.Printf("anomaly visible at the base station with zero detection latency ✓\n\n")

	// Fire-alarm thresholds over the sink estimates: the ±ε bound makes
	// detection guaranteed — no crossing can slip through unalerted.
	ths := make([]events.Threshold, n)
	for i := range ths {
		ths[i] = events.Threshold{Attr: i, Level: 33, Eps: 0.5}
	}
	alarm, err := events.NewDetector(n, ths)
	if err != nil {
		return err
	}
	alerts, err := alarm.Scan(res.Estimates)
	if err != nil {
		return err
	}
	if _, _, err := alarm.Audit(res.Estimates, test); err != nil {
		return fmt.Errorf("detection guarantee audit: %w", err)
	}
	fmt.Printf("fire alarm at 33°C: %d alerts fired, audit confirms zero missed crossings\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  step %d node %d: %.2f°C (%s)\n", a.Step, a.Attr, a.Estimate, a.Verdict)
	}
	fmt.Println()

	// Failure detection (§6): estimate node 0's report rate with Monte
	// Carlo, then watch its report stream. A healthy silent patch is fine;
	// a dead node trips the detector.
	col := make([][]float64, trainHours)
	for t := range col {
		col[t] = []float64{train[t][0]}
	}
	mdl, err := model.FitLinearGaussian(col, model.FitConfig{Period: 24})
	if err != nil {
		return err
	}
	rate, err := mc.ExpectedReports(mdl, []float64{0.5}, mc.Config{Seed: 3})
	if err != nil {
		return err
	}
	if rate >= 1 {
		rate = 0.99
	}
	det, err := core.NewFailureDetector(rate, 0.001)
	if err != nil {
		return err
	}
	fmt.Printf("node 0 expected report rate: %.2f → silence of %d+ steps ⇒ suspect failure\n",
		rate, det.SilenceThreshold())

	// Feed the detector the real per-step report pattern, then simulate
	// the node dying (pure silence).
	died := -1
	for t := 0; t < len(test); t++ {
		reported := res.ReportedAt(t, 0)
		if t >= 300 {
			reported = false // node dies at step 300
		}
		if det.Observe(reported) && died < 0 {
			died = t
		}
	}
	if died < 0 {
		return fmt.Errorf("failure never detected")
	}
	fmt.Printf("node 0 died at step 300; detector flagged it at step %d (%d steps of silence)\n",
		died, died-300+1)
	return nil
}
