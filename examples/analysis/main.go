// Analysis: the biologist's end-to-end workflow on imperfect data (§1).
//
// A real deployment trace arrives as a CSV full of holes (radio loss,
// reboots). This example: (1) writes such a CSV, complete with NaN gaps;
// (2) loads and repairs it with trace.FromCSV + trace.FillGaps; (3) runs
// Ken collection over it; (4) answers the exploratory windowed aggregates
// the paper's biologists wanted — daily means, weekly extremes — from the
// sink's answer stream alone, each with an error bar provably derived
// from the collection contract.
//
//	go run ./examples/analysis
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/model"
	"ken/internal/query"
	"ken/internal/trace"
)

const (
	trainHours = 100
	testHours  = 24 * 14 // two weeks
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A "field" CSV: generate a garden trace, punch radio-loss holes
	//    into it, and round-trip it through the CSV interchange format.
	tr, err := trace.GenerateGarden(29, trainHours+testHours)
	if err != nil {
		return err
	}
	var csvBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf, trace.Temperature); err != nil {
		return err
	}
	rows, _, err := trace.ReadCSVMatrix(&csvBuf)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(5))
	holes := 0
	for t := range rows {
		for i := range rows[t] {
			if rng.Float64() < 0.03 { // 3% of readings lost
				rows[t][i] = math.NaN()
				holes++
			}
		}
	}
	fmt.Printf("field data: %d readings, %d holes (%.1f%%)\n",
		len(rows)*len(rows[0]), holes, 100*float64(holes)/float64(len(rows)*len(rows[0])))

	// 2. Repair: interpolate interior gaps, refuse anything long enough to
	//    be fiction.
	if err := trace.FillGaps(rows, 6); err != nil {
		return err
	}
	repaired, err := trace.FromMatrix(tr.Deployment, trace.Temperature, rows, 60)
	if err != nil {
		return err
	}
	full, err := repaired.Rows(trace.Temperature)
	if err != nil {
		return err
	}
	n := repaired.Deployment.N()
	train, test := full[:trainHours], full[trainHours:]
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = 0.5
	}

	// 3. Collect with Ken (adjacent pairs).
	p := &cliques.Partition{}
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i, i + 1}, Root: i})
		} else {
			p.Cliques = append(p.Cliques, cliques.Clique{Members: []int{i}, Root: i})
		}
	}
	ken, err := core.NewKen(core.KenConfig{
		Partition: p, Train: train, Eps: eps,
		FitCfg: model.FitConfig{Period: 24},
	})
	if err != nil {
		return err
	}
	res, err := core.Run(context.Background(), ken, test, core.RunOptions{Eps: eps})
	if err != nil {
		return err
	}
	fmt.Printf("collection: %.1f%% of readings transmitted, %d ε violations\n\n",
		100*res.FractionReported(), res.BoundViolations)

	// 4. Exploratory analytics at the base station, with error bars.
	allAttrs := make([]int, n)
	for i := range allAttrs {
		allAttrs[i] = i
	}
	fmt.Println("daily network-wide temperature means (answered from estimates only):")
	for day := 0; day < 5; day++ {
		w := query.Window{Agg: query.Avg, Attrs: allAttrs, From: day * 24, To: (day + 1) * 24}
		ans, err := query.Eval(res.Estimates, eps, w)
		if err != nil {
			return err
		}
		truth, err := query.TruthAggregate(test, w)
		if err != nil {
			return err
		}
		fmt.Printf("  day %d: %6.2f ± %.2f °C   (truth %6.2f — inside the bar: %v)\n",
			day+1, ans.Value, ans.Bound, truth, math.Abs(ans.Value-truth) <= ans.Bound)
	}
	for _, agg := range []query.Aggregate{query.Min, query.Max} {
		w := query.Window{Agg: agg, Attrs: allAttrs, From: 0, To: 24 * 7}
		ans, err := query.Eval(res.Estimates, eps, w)
		if err != nil {
			return err
		}
		truth, err := query.TruthAggregate(test, w)
		if err != nil {
			return err
		}
		fmt.Printf("week-1 %s: %6.2f ± %.2f °C (truth %6.2f)\n", agg, ans.Value, ans.Bound, truth)
	}
	fmt.Println("\nevery error bar is a theorem, not a heuristic: it follows from the ±ε collection contract")
	return nil
}
