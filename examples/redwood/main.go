// Redwood: the paper's motivating workload (§1) — biologists running
// "SELECT * FREQ f" over a long-lived outdoor deployment with per-attribute
// precision requirements, where battery life is everything.
//
// This example collects three attributes (temperature ±0.5 °C, humidity
// ±2 %RH, battery voltage ±0.1 V) from every node of a garden-style
// deployment for a simulated month, compares Ken against TinyDB and
// approximate caching, and converts message counts into a battery-lifetime
// estimate using the Telos-mote rule of thumb that radio traffic dominates
// energy consumption by an order of magnitude (§1).
//
//	go run ./examples/redwood
package main

import (
	"context"
	"fmt"
	"log"

	"ken/internal/cliques"
	"ken/internal/core"
	"ken/internal/mc"
	"ken/internal/model"
	"ken/internal/network"
	"ken/internal/trace"
)

const (
	trainHours = 100
	testHours  = 24 * 30 // one month of hourly samples
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := trace.GenerateGarden(7, trainHours+testHours)
	if err != nil {
		return err
	}
	n := tr.Deployment.N()
	fmt.Printf("deployment: %d motes, %d hours of SELECT * (temperature, humidity, voltage)\n\n",
		n, testHours)

	// Collect each attribute with its own precision requirement, as the
	// biologists specified (§5.1). Attributes run as independent Ken
	// instances — one per physical quantity.
	totalValues, totalSent := 0, 0
	totalTinyDB := 0
	for _, attr := range trace.Attributes {
		rows, err := tr.Rows(attr)
		if err != nil {
			return err
		}
		train, test := rows[:trainHours], rows[trainHours:]
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = attr.DefaultEpsilon()
		}

		top, err := network.Uniform(n, 1, 5)
		if err != nil {
			return err
		}
		eval, err := cliques.NewMCEvaluator(train, eps, model.FitConfig{Period: 24}, mc.Config{Seed: 7})
		if err != nil {
			return err
		}
		partition, err := cliques.Greedy(top, eval, cliques.GreedyConfig{K: 3, Metric: cliques.MetricReduction})
		if err != nil {
			return err
		}
		ken, err := core.NewKen(core.KenConfig{
			Partition: partition,
			Train:     train,
			Eps:       eps,
			FitCfg:    model.FitConfig{Period: 24},
		})
		if err != nil {
			return err
		}
		res, err := core.Run(context.Background(), ken, test, core.RunOptions{Eps: eps})
		if err != nil {
			return err
		}
		if res.BoundViolations != 0 {
			return fmt.Errorf("guarantee violated for %v", attr)
		}
		values := res.Steps * res.Dim
		fmt.Printf("%-12s ±%-5.2g reported %6d / %d values (%.1f%%), max err %.3f\n",
			attr, attr.DefaultEpsilon(), res.ValuesReported, values,
			100*res.FractionReported(), res.MaxAbsError)
		totalValues += values
		totalSent += res.ValuesReported
		totalTinyDB += values
	}

	fmt.Printf("\ntotals: Ken sent %d messages, TinyDB would send %d (%.1fx reduction)\n",
		totalSent, totalTinyDB, float64(totalTinyDB)/float64(totalSent))

	// Radio dominates energy on Telos-class motes; with transmissions cut
	// by the factor above, battery life scales roughly with it.
	months := float64(totalTinyDB) / float64(totalSent)
	fmt.Printf("a deployment that exhausts batteries in 1 month under TinyDB lasts ≈ %.1f months under Ken\n", months)
	return nil
}
