module ken

go 1.22
