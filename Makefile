# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet lint fmt-check test race cover bench bench-smoke audit-smoke faults-smoke figures examples fuzz clean

all: build test

# check is the pre-commit gate: formatting, static analysis (vet + the
# kenlint invariant analyzers), the test suite and the race detector in
# one go.
check: fmt-check vet lint test race

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# lint runs the custom go/analysis suite (cmd/kenlint): determinism,
# seeding, wire-error, float-comparison and observability invariants.
# See docs/LINT.md. Ordered after vet in check so the `go vet` build pass
# has already warmed the build cache kenlint's `go run` compiles from —
# the two analyses share one compilation of the tree.
lint:
	$(GO) run ./cmd/kenlint ./...

fmt-check:
	@out=$$(gofmt -l cmd internal examples); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fast end-to-end pass over every figure on the parallel engine.
bench-smoke:
	$(GO) run ./cmd/kenbench -all -quick -parallel 8

# audit-smoke proves the protocol invariants on real traces: a kensim lab
# comparison and the quick benchmark suite at pool widths 1 and 8, each
# replayed through kenaudit -strict (ε bound, no silent divergence, byte
# accounting). The two kenbench audit reports must be byte-identical —
# parallel scheduling may reorder trace lines but never the audited facts.
# See docs/OBSERVABILITY.md.
audit-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/kensim -dataset lab -scheme all -parallel 4 -test 300 -trace-out "$$tmp/kensim.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/kensim.jsonl" -strict -q && \
	$(GO) run ./cmd/kenbench -all -quick -parallel 1 -trace-out "$$tmp/seq.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenbench -all -quick -parallel 8 -trace-out "$$tmp/par.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/seq.jsonl" -strict -q -json "$$tmp/seq.json" && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/par.jsonl" -strict -q -json "$$tmp/par.json" && \
	cmp "$$tmp/seq.json" "$$tmp/par.json" && \
	echo "audit-smoke: PASS (traces audit clean; parallel report == sequential report)"

# faults-smoke proves the reliability layer under fire: the §6 lossy
# protocol (kensim, 20% report loss with heartbeats) and the full packet
# simulator (kennet, 20% per-hop loss with ARQ, heartbeats and base-side
# failure detection), each trace replayed through kenaudit -strict — the
# auditor must excuse every ε miss by a traced, unrepaired drop and agree
# with both byte ledgers and the retransmission counts.
faults-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/kensim -dataset garden -scheme djc -test 400 -loss 0.2 -heartbeat 10 -trace-out "$$tmp/lossy.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/lossy.jsonl" -strict -q && \
	$(GO) run ./cmd/kennet -program ken -steps 200 -loss 0.2 -arq-retries 3 -heartbeat 10 -failure-alpha 0.01 -trace-out "$$tmp/arq.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/arq.jsonl" -strict -q && \
	echo "faults-smoke: PASS (lossy + ARQ traces audit clean at 20% loss)"

# Regenerate every figure of the paper plus the extension/sweep tables.
figures:
	$(GO) run ./cmd/kenbench -all -test 5000
	$(GO) run ./cmd/kenbench -fig 15 -test 900
	$(GO) run ./cmd/kenbench -fig 16 -test 1500

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/redwood
	$(GO) run ./examples/anomaly
	$(GO) run ./examples/lossy
	$(GO) run ./examples/lifetime
	$(GO) run ./examples/streaming
	$(GO) run ./examples/pullquery
	$(GO) run ./examples/analysis

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzReadCSVMatrix -fuzztime 30s ./internal/trace/

clean:
	$(GO) clean -testcache
