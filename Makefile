# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build vet lint fmt-check test race alloc-check cover bench bench-smoke bench-baseline bench-compare audit-smoke faults-smoke sinkd-smoke figures examples fuzz clean

all: build test

# check is the pre-commit gate: formatting, static analysis (vet + the
# kenlint invariant analyzers) and the race detector in one go. The race
# run IS the test suite (same tests, more checking), so a plain `go test`
# pass would only repeat it without the detector.
check: fmt-check vet lint race

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# lint runs the custom go/analysis suite (cmd/kenlint): determinism,
# seeding, wire-error, float-comparison, observability, hot-path
# allocation and concurrency-discipline invariants.
# See docs/LINT.md. Ordered after vet in check so the `go vet` build pass
# has already warmed the build cache kenlint's `go run` compiles from —
# the two analyses share one compilation of the tree.
lint:
	$(GO) run ./cmd/kenlint ./...

fmt-check:
	@out=$$(gofmt -l cmd internal examples); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# alloc-check pins the hot-path allocation budgets (TestAllocBudget* —
# zero allocs per steady-state epoch; see docs/LINT.md). Run without
# -race: the budget tests skip themselves under race instrumentation,
# whose shadow allocations would drown the counts.
alloc-check:
	$(GO) test -run TestAllocBudget ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fast end-to-end pass over every figure on the parallel engine.
bench-smoke:
	$(GO) run ./cmd/kenbench -all -quick -parallel 8

# bench-baseline records the three layer throughput yardsticks as
# BENCH_{core,engine,stream}.json at the repo root: the core DjC2 replay
# (epochs/sec), the Fig 9 cell suite on a cold engine (cells/sec) and the
# framed source→replica loop (frames/sec). Setup — trace generation,
# model fits, clique selection — is excluded from the stopwatch. CI
# uploads the three files as an artifact so regressions are comparable
# across runs.
bench-baseline:
	$(GO) run ./cmd/kenbench -baseline-out . -test 600
	$(GO) run ./cmd/kenswarm -selfhost -tenants 16 -steps 200 -baseline-out .

# bench-compare re-times the kenbench layer yardsticks against the
# committed BENCH_{core,engine,stream}.json and fails on a >15%
# throughput regression, writing the diff to bench-compare.json. CI runs
# it non-blocking (shared runners jitter) and uploads the report; run it
# locally before committing anything hot-path adjacent.
bench-compare:
	$(GO) run ./cmd/kenbench -baseline-compare . -compare-out bench-compare.json -test 600

# sinkd-smoke proves the multi-tenant daemon end to end with real
# processes: kensinkd pinned to one deployment, three concurrent kensource
# tenants streaming through the session handshake, the /v1/query answers
# verified bit-identical to local reference replicas by kenswarm, a
# mismatched-spec client rejected with the typed "spec rejected" error,
# and the live SLO monitor probed both ways — /v1/health healthy via
# `kentop -once -fail-degraded` after the clean run, then degraded on a
# second daemon whose injected apply delay (-apply-delay) sheds a bursty
# tenant, flipping /v1/health to 503/"shedding" end to end.
sinkd-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"; kill $$daemon $$daemon2 2>/dev/null' EXIT && \
	$(GO) build -o "$$tmp/kensinkd" ./cmd/kensinkd && \
	$(GO) build -o "$$tmp/kenswarm" ./cmd/kenswarm && \
	$(GO) build -o "$$tmp/kensource" ./cmd/kensource && \
	$(GO) build -o "$$tmp/kentop" ./cmd/kentop && \
	{ "$$tmp/kensinkd" -pin -seed 1 -listen 127.0.0.1:7171 -http 127.0.0.1:7172 >"$$tmp/daemon.log" 2>&1 & } && daemon=$$! && \
	"$$tmp/kenswarm" -connect 127.0.0.1:7171 -http http://127.0.0.1:7172 \
		-seed 1 -tenants 3 -specs 1 -steps 150 -verify && \
	if "$$tmp/kensource" -connect 127.0.0.1:7171 -tenant intruder -seed 99 -steps 10 2>"$$tmp/rej.log"; then \
		echo "sinkd-smoke: FAIL (pinned daemon accepted a mismatched spec)"; exit 1; fi && \
	grep -q "spec rejected" "$$tmp/rej.log" && \
	"$$tmp/kentop" -http http://127.0.0.1:7172 -once -fail-degraded >"$$tmp/top.log" && \
	grep -q "status: ok" "$$tmp/top.log" && \
	{ "$$tmp/kensinkd" -listen 127.0.0.1:7173 -http 127.0.0.1:7174 \
		-frame-budget 2 -apply-delay 200ms >"$$tmp/daemon2.log" 2>&1 & } && daemon2=$$! && \
	sleep 1 && \
	{ "$$tmp/kensource" -connect 127.0.0.1:7173 -tenant bursty -seed 1 -steps 40 2>"$$tmp/shed.log" || true; } && \
	shed=""; for i in $$(seq 1 20); do \
		if "$$tmp/kentop" -http http://127.0.0.1:7174 -once | grep -q "shedding"; then shed=yes; break; fi; \
		sleep 0.5; \
	done; test -n "$$shed" || { echo "sinkd-smoke: FAIL (tenant never shed)"; cat "$$tmp/daemon2.log"; exit 1; } && \
	if "$$tmp/kentop" -http http://127.0.0.1:7174 -once -fail-degraded >"$$tmp/top2.log"; then \
		echo "sinkd-smoke: FAIL (kentop did not flag the degraded daemon)"; exit 1; fi && \
	grep -q "status: degraded" "$$tmp/top2.log" && \
	echo "sinkd-smoke: PASS (3 tenants verified bit-identical; mismatched spec rejected; health ok->degraded probed via kentop)"

# audit-smoke proves the protocol invariants on real traces: a kensim lab
# comparison and the quick benchmark suite at pool widths 1 and 8, each
# replayed through kenaudit -strict (ε bound, no silent divergence, byte
# accounting). The two kenbench audit reports must be byte-identical —
# parallel scheduling may reorder trace lines but never the audited facts.
# The last leg exercises the tamper evidence of the segmented store: the
# same kensim run written as a hash-chained store must pass
# kenaudit -verify-chain, and must fail it (exit 1) after a single flipped
# byte. See docs/OBSERVABILITY.md.
audit-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/kensim -dataset lab -scheme all -parallel 4 -test 300 -trace-out "$$tmp/kensim.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/kensim.jsonl" -strict -q && \
	$(GO) run ./cmd/kenbench -all -quick -parallel 1 -trace-out "$$tmp/seq.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenbench -all -quick -parallel 8 -trace-out "$$tmp/par.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/seq.jsonl" -strict -q -json "$$tmp/seq.json" && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/par.jsonl" -strict -q -json "$$tmp/par.json" && \
	cmp "$$tmp/seq.json" "$$tmp/par.json" && \
	$(GO) run ./cmd/kensim -dataset lab -scheme djc -parallel 1 -test 200 -trace-out "$$tmp/store/" -trace-segment-events 500 >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/store" -verify-chain -strict -q 2>/dev/null && \
	printf 'X' | dd of="$$tmp/store/seg-00000000.jsonl" bs=1 seek=100 count=1 conv=notrunc 2>/dev/null && \
	if $(GO) run ./cmd/kenaudit -trace "$$tmp/store" -verify-chain -q 2>/dev/null; then \
		echo "audit-smoke: FAIL (verify-chain accepted a corrupted store)"; exit 1; fi && \
	echo "audit-smoke: PASS (traces audit clean; parallel == sequential; corruption detected)"

# faults-smoke proves the reliability layer under fire: the §6 lossy
# protocol (kensim, 20% report loss with heartbeats) and the full packet
# simulator (kennet, 20% per-hop loss with ARQ, heartbeats and base-side
# failure detection), each trace replayed through kenaudit -strict — the
# auditor must excuse every ε miss by a traced, unrepaired drop and agree
# with both byte ledgers and the retransmission counts.
faults-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/kensim -dataset garden -scheme djc -test 400 -loss 0.2 -heartbeat 10 -trace-out "$$tmp/lossy.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/lossy.jsonl" -strict -q && \
	$(GO) run ./cmd/kennet -program ken -steps 200 -loss 0.2 -arq-retries 3 -heartbeat 10 -failure-alpha 0.01 -trace-out "$$tmp/arq.jsonl" >/dev/null && \
	$(GO) run ./cmd/kenaudit -trace "$$tmp/arq.jsonl" -strict -q && \
	echo "faults-smoke: PASS (lossy + ARQ traces audit clean at 20% loss)"

# Regenerate every figure of the paper plus the extension/sweep tables.
figures:
	$(GO) run ./cmd/kenbench -all -test 5000
	$(GO) run ./cmd/kenbench -fig 15 -test 900
	$(GO) run ./cmd/kenbench -fig 16 -test 1500

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/redwood
	$(GO) run ./examples/anomaly
	$(GO) run ./examples/lossy
	$(GO) run ./examples/lifetime
	$(GO) run ./examples/streaming
	$(GO) run ./examples/pullquery
	$(GO) run ./examples/analysis

fuzz:
	$(GO) test -fuzz 'FuzzDecode$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz 'FuzzDecodeSession$$' -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzReadCSVMatrix -fuzztime 30s ./internal/trace/

clean:
	$(GO) clean -testcache
